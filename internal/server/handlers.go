package server

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"eventmatch/internal/server/tenant"
)

// Handler returns the daemon's HTTP handler. Routes use the Go 1.22 method
// and wildcard patterns of net/http.ServeMux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /api/v1/sessions", s.handleSessionOpen)
	mux.HandleFunc("POST /api/v1/sessions/{id}/events", s.handleSessionAppend)
	mux.HandleFunc("GET /api/v1/sessions/{id}", s.handleSessionStatus)
	mux.HandleFunc("GET /api/v1/sessions/{id}/watch", s.handleSessionWatch)
	mux.HandleFunc("POST /api/v1/sessions/{id}/close", s.handleSessionClose)
	mux.HandleFunc("DELETE /api/v1/sessions/{id}", s.handleSessionAbort)
	mux.HandleFunc("GET /api/v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// handleSubmit admits a job: resolve the tenant, charge its rate budget
// (over-limit floods are turned away before their body is even parsed),
// parse and fully validate the submission (bad input never reaches a
// worker), then reserve a slot in the tenant's queue or fail fast.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	ten, err := requestTenant(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	now := time.Now()
	if ok, retryAt := s.limiter.Allow(ten, now); !ok {
		s.rateLimited.Inc()
		s.tenantStats(ten).rejectedRate.Inc()
		// The hint is the limiter's earliest-admissible instant — unlike the
		// queue-full hint it is exact, not an estimate.
		write429(w, ErrorResponse{Error: "rate limited", Reason: ReasonRateLimited},
			tenant.RetryAfter(now, retryAt))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	spec, err := s.parseSubmit(r)
	if err != nil {
		code := http.StatusBadRequest
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, err.Error())
		return
	}
	spec.tenant = ten
	j, err := s.submit(r.Context(), spec)
	switch {
	case errors.Is(err, errSaturated):
		msg := "job queue full"
		if errors.Is(err, errTenantSaturated) {
			msg = "tenant queue full"
		}
		retry := s.retryAfter()
		sec := int(retry.Seconds() + 0.5)
		if sec < 1 {
			sec = 1
		}
		write429(w, ErrorResponse{Error: msg, Reason: ReasonQueueFull}, sec)
		return
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// write429 sends one rejection with its Retry-After both as a header and in
// the JSON body.
func write429(w http.ResponseWriter, resp ErrorResponse, retryAfterSec int) {
	resp.RetryAfterSec = retryAfterSec
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	writeJSON(w, http.StatusTooManyRequests, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.all()
	resp := ListResponse{Jobs: make([]JobStatus, 0, len(jobs))}
	for _, j := range jobs {
		resp.Jobs = append(resp.Jobs, j.status())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleResult serves the terminal outcome. Non-terminal jobs answer 409 so
// a poller can distinguish "not yet" from "gone wrong".
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	state, res, errMsg := j.snapshot()
	switch state {
	case StateDone:
		writeJSON(w, http.StatusOK, res)
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{
			Error: errMsg, State: state,
		})
	case StateCanceled:
		writeJSON(w, http.StatusGone, ErrorResponse{
			Error: "job canceled before it started; no result",
			State: state, StopReason: "canceled",
		})
	default:
		writeJSON(w, http.StatusConflict, ErrorResponse{
			Error: fmt.Sprintf("job is %s; poll until terminal", state),
			State: state,
		})
	}
}

// handleCancel delivers a cancellation. Cancelling an already-terminal job
// is a no-op that still reports the job's status — cancellation is
// idempotent from the client's side.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	if j.requestCancel() {
		s.canceled.Inc()
		s.tenantStats(j.spec.tenant).canceled.Inc()
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// queueFullRetrySec renders the server's Retry-After estimate as whole
// seconds (floored at 1) for queue-full rejections.
func (s *Server) queueFullRetrySec() int {
	sec := int(s.retryAfter().Seconds() + 0.5)
	if sec < 1 {
		sec = 1
	}
	return sec
}

// handleSessionOpen admits a streaming session through the same gauntlet as a
// job submission: drain check, tenant resolution, rate budget, body cap, full
// validation — plus the live-session cap (sessions hold a writer goroutine
// for their whole lifetime, so they are bounded separately from jobs).
func (s *Server) handleSessionOpen(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	ten, err := requestTenant(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	now := time.Now()
	if ok, retryAt := s.limiter.Allow(ten, now); !ok {
		s.rateLimited.Inc()
		s.tenantStats(ten).rejectedRate.Inc()
		write429(w, ErrorResponse{Error: "rate limited", Reason: ReasonRateLimited},
			tenant.RetryAfter(now, retryAt))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	var req OpenSessionRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		code := http.StatusBadRequest
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, "parsing request: "+err.Error())
		return
	}
	if s.sessions.live() >= s.cfg.MaxSessions {
		s.sessRejected.Inc()
		write429(w, ErrorResponse{Error: "session limit reached", Reason: ReasonQueueFull},
			s.queueFullRetrySec())
		return
	}
	ss, err := s.openSession(r.Context(), req, ten)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, ss.status())
}

// handleSessionAppend admits one chunk of target traces. The backlog bound is
// per session: a client more than SessionBacklog traces ahead of the last
// published mapping gets 429 until the matcher catches up.
func (s *Server) handleSessionAppend(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	ss, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	ten, err := requestTenant(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if ten != ss.spec.tenant {
		writeError(w, http.StatusForbidden, "session belongs to another tenant")
		return
	}
	now := time.Now()
	if ok, retryAt := s.limiter.Allow(ten, now); !ok {
		s.rateLimited.Inc()
		s.tenantStats(ten).rejectedRate.Inc()
		write429(w, ErrorResponse{Error: "rate limited", Reason: ReasonRateLimited},
			tenant.RetryAfter(now, retryAt))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	var req SessionAppendRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		code := http.StatusBadRequest
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, "parsing request: "+err.Error())
		return
	}
	traces, err := parseSessionTraces(req.Traces)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	accepted, err := s.appendSession(ss, traces)
	switch {
	case errors.Is(err, errSessionClosing):
		writeError(w, http.StatusConflict, "session is closing; no further appends")
		return
	case errors.Is(err, errSessionTerminal):
		writeError(w, http.StatusGone, "session is terminal")
		return
	case errors.Is(err, errSaturated):
		s.sessRejected.Inc()
		msg := "session backlog full"
		if errors.Is(err, errTenantSaturated) {
			msg = "tenant append queue full"
		}
		write429(w, ErrorResponse{Error: msg, Reason: ReasonQueueFull}, s.queueFullRetrySec())
		return
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, SessionAppendResponse{Accepted: accepted})
}

func (s *Server) handleSessionStatus(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	writeJSON(w, http.StatusOK, ss.status())
}

// handleSessionWatch streams mapping updates as JSON lines until the session
// ends or the client disconnects. The latest update is replayed first, so a
// new watcher starts from the current state.
func (s *Server) handleSessionWatch(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	fl, canFlush := w.(http.Flusher)
	if !canFlush {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	id, ch, live := ss.addWatcher()
	if live {
		defer ss.removeWatcher(id)
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	enc := json.NewEncoder(w)
	for {
		select {
		case up, open := <-ch:
			if !open {
				return
			}
			if err := enc.Encode(up); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleSessionClose starts the clean drain and waits (bounded by the request
// context) for the terminal state: 200 with the final status when the drain
// finished in time, 202 when it is still converging — poll the status
// endpoint for the final mapping.
func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	s.closeSession(ss)
	st := s.waitSessionTerminal(r.Context(), ss)
	code := http.StatusOK
	if !st.State.Terminal() {
		code = http.StatusAccepted
	}
	writeJSON(w, code, st)
}

// handleSessionAbort terminates a session immediately; idempotent like job
// cancellation — aborting a terminal session just reports its status.
func (s *Server) handleSessionAbort(w http.ResponseWriter, r *http.Request) {
	ss, ok := s.sessions.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown session")
		return
	}
	s.abortSession(ss, true)
	writeJSON(w, http.StatusOK, ss.status())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.reg.WriteJSON(w); err != nil {
		// Headers are gone; nothing useful left to send.
		return
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}
