package server

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"eventmatch/internal/server/tenant"
)

// Handler returns the daemon's HTTP handler. Routes use the Go 1.22 method
// and wildcard patterns of net/http.ServeMux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /api/v1/jobs", s.handleList)
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /api/v1/jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /api/v1/metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

// handleSubmit admits a job: resolve the tenant, charge its rate budget
// (over-limit floods are turned away before their body is even parsed),
// parse and fully validate the submission (bad input never reaches a
// worker), then reserve a slot in the tenant's queue or fail fast.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	ten, err := requestTenant(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	now := time.Now()
	if ok, retryAt := s.limiter.Allow(ten, now); !ok {
		s.rateLimited.Inc()
		s.tenantStats(ten).rejectedRate.Inc()
		// The hint is the limiter's earliest-admissible instant — unlike the
		// queue-full hint it is exact, not an estimate.
		write429(w, ErrorResponse{Error: "rate limited", Reason: ReasonRateLimited},
			tenant.RetryAfter(now, retryAt))
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxUploadBytes)
	spec, err := s.parseSubmit(r)
	if err != nil {
		code := http.StatusBadRequest
		var maxErr *http.MaxBytesError
		if errors.As(err, &maxErr) {
			code = http.StatusRequestEntityTooLarge
		}
		writeError(w, code, err.Error())
		return
	}
	spec.tenant = ten
	j, err := s.submit(r.Context(), spec)
	switch {
	case errors.Is(err, errSaturated):
		msg := "job queue full"
		if errors.Is(err, errTenantSaturated) {
			msg = "tenant queue full"
		}
		retry := s.retryAfter()
		sec := int(retry.Seconds() + 0.5)
		if sec < 1 {
			sec = 1
		}
		write429(w, ErrorResponse{Error: msg, Reason: ReasonQueueFull}, sec)
		return
	case errors.Is(err, errDraining):
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

// write429 sends one rejection with its Retry-After both as a header and in
// the JSON body.
func write429(w http.ResponseWriter, resp ErrorResponse, retryAfterSec int) {
	resp.RetryAfterSec = retryAfterSec
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSec))
	writeJSON(w, http.StatusTooManyRequests, resp)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobs.all()
	resp := ListResponse{Jobs: make([]JobStatus, 0, len(jobs))}
	for _, j := range jobs {
		resp.Jobs = append(resp.Jobs, j.status())
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, j.status())
}

// handleResult serves the terminal outcome. Non-terminal jobs answer 409 so
// a poller can distinguish "not yet" from "gone wrong".
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	state, res, errMsg := j.snapshot()
	switch state {
	case StateDone:
		writeJSON(w, http.StatusOK, res)
	case StateFailed:
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{
			Error: errMsg, State: state,
		})
	case StateCanceled:
		writeJSON(w, http.StatusGone, ErrorResponse{
			Error: "job canceled before it started; no result",
			State: state, StopReason: "canceled",
		})
	default:
		writeJSON(w, http.StatusConflict, ErrorResponse{
			Error: fmt.Sprintf("job is %s; poll until terminal", state),
			State: state,
		})
	}
}

// handleCancel delivers a cancellation. Cancelling an already-terminal job
// is a no-op that still reports the job's status — cancellation is
// idempotent from the client's side.
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobs.get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	if j.requestCancel() {
		s.canceled.Inc()
		s.tenantStats(j.spec.tenant).canceled.Inc()
	}
	writeJSON(w, http.StatusAccepted, j.status())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.reg.WriteJSON(w); err != nil {
		// Headers are gone; nothing useful left to send.
		return
	}
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // the status line is already out; nothing to recover
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, ErrorResponse{Error: msg})
}
