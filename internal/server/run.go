package server

import (
	"time"

	"eventmatch/internal/event"
	"eventmatch/internal/logio"
	"eventmatch/internal/match"
	"eventmatch/internal/metrics"

	"eventmatch"
)

// runJob executes one admitted job on a pool worker. Every user-facing
// validation already happened at submit time, so errors here are engine
// errors and land the job in StateFailed.
func (s *Server) runJob(j *job) {
	ts := s.tenantStats(j.spec.tenant)
	// j.started was written by j.start() on this same goroutine. The wait
	// observation lands in the global timer and the tenant's own — the
	// per-tenant wait distribution is the fairness evidence (a starved
	// tenant shows up as an unbounded tail here).
	wait := j.started.Sub(j.created)
	s.waitTimer.Observe(wait)
	ts.waitTimer.Observe(wait)
	if s.testHookBeforeRun != nil {
		s.testHookBeforeRun(j)
	}
	res, err := s.execute(j)
	d := time.Since(j.started)
	s.runTimer.Observe(d)
	s.noteJobDuration(d)
	if err == nil {
		// Result artifact + binding record land before the done transition:
		// a replay that finds the result can serve it even when the final
		// state record was lost to a crash.
		s.persistResult(j, res)
	}
	j.finish(res, err)
	if err != nil {
		s.failed.Inc()
		ts.failed.Inc()
	} else {
		s.completed.Inc()
		ts.completed.Inc()
	}
	j.cancel() // release the job context in every terminal path
}

// execute dispatches the spec to the matching engine, mirroring the
// algorithm dispatch of the eventmatch facade. The pattern-based algorithms
// go through the problem cache so repeated jobs over the same log pair reuse
// the built problem and its warm frequency caches; the closed-form baselines
// are cheap and run through the facade directly.
func (s *Server) execute(j *job) (*JobResult, error) {
	spec := j.spec
	switch spec.algorithm {
	case eventmatch.AlgoVertex, eventmatch.AlgoIterative, eventmatch.AlgoEntropy:
		r, err := eventmatch.MatchContext(j.ctx, spec.l1, spec.l2, eventmatch.Config{
			Algorithm:   spec.algorithm,
			MaxDuration: spec.timeout,
			Telemetry:   s.reg,
		})
		if err != nil {
			return nil, err
		}
		return s.buildResult(j, r.Mapping, r.Stats), nil
	}

	mode := match.ModePattern
	if spec.algorithm == eventmatch.AlgoVertexEdge {
		mode = match.ModeVertexEdge
	}
	pr, err := s.prs.get(problemKey(spec.h1, spec.h2, mode, spec.patterns),
		spec.l1, spec.l2, spec.patterns, mode)
	if err != nil {
		return nil, err
	}
	opts := match.Options{
		Bound:         match.BoundSharp,
		MaxDuration:   spec.timeout,
		MaxGenerated:  spec.maxGenerated,
		MaxFrontier:   spec.maxFrontier,
		Workers:       spec.workers,
		Telemetry:     s.reg,
		Progress:      j.setProgress,
		ProgressEvery: s.cfg.ProgressEvery,
		// Durability: periodic best-so-far snapshots to the journal, and the
		// recovered checkpoint (if any) as a floor on the re-run's result.
		Checkpoint:      s.checkpointHook(j),
		CheckpointEvery: s.cfg.CheckpointEvery,
		Seed:            spec.seed,
	}
	var (
		m  match.Mapping
		st match.Stats
	)
	switch spec.algorithm {
	case eventmatch.AlgoExact, eventmatch.AlgoVertexEdge:
		m, st, err = pr.AStarContext(j.ctx, opts)
	case eventmatch.AlgoExactSimpleBound:
		opts.Bound = match.BoundSimple
		m, st, err = pr.AStarContext(j.ctx, opts)
	case eventmatch.AlgoHeuristicSimple:
		opts.Bound = match.BoundSimple
		m, st, err = pr.GreedyExpandContext(j.ctx, opts)
	default: // AlgoHeuristicAdvanced
		opts.Bound = match.BoundSimple
		m, st, err = pr.HeuristicAdvancedContext(j.ctx, opts)
	}
	if err != nil {
		return nil, err
	}
	return s.buildResult(j, m, st), nil
}

// buildResult assembles the wire result from an id-level mapping and the
// search stats.
func (s *Server) buildResult(j *job, m match.Mapping, st match.Stats) *JobResult {
	spec := j.spec
	res := &JobResult{
		ID:         j.id,
		Algorithm:  spec.algoName,
		Tenant:     spec.tenant,
		Pairs:      namePairs(spec.l1, spec.l2, m),
		Score:      st.Score,
		Expanded:   st.Expanded,
		Generated:  st.Generated,
		ElapsedMS:  st.Elapsed.Milliseconds(),
		Truncated:  st.Truncated,
		StopReason: st.StopReason,
		Read1:      readInfo(spec.rep1),
		Read2:      readInfo(spec.rep2),
	}
	if spec.truth != nil {
		q := metrics.Evaluate(m, spec.truth)
		res.Quality = &QualityInfo{
			Correct:   q.Correct,
			Found:     q.Found,
			Truth:     q.Truth,
			Precision: q.Precision,
			Recall:    q.Recall,
			FMeasure:  q.FMeasure,
		}
	}
	return res
}

// namePairs renders an id-level mapping as name pairs (the facade keeps its
// equivalent unexported).
func namePairs(l1, l2 *event.Log, m match.Mapping) map[string]string {
	out := make(map[string]string)
	for v1, v2 := range m {
		if v2 == event.None {
			continue
		}
		out[l1.Alphabet.Name(event.ID(v1))] = l2.Alphabet.Name(v2)
	}
	return out
}

// readInfo converts an ingestion report to its wire form; clean reads render
// as nil (omitted from the JSON).
func readInfo(rep logio.ReadReport) *ReadInfo {
	if rep.SkippedRows == 0 && rep.SkippedTraces == 0 && rep.ErrorCount == 0 {
		return nil
	}
	return &ReadInfo{
		Traces:        rep.Traces,
		SkippedRows:   rep.SkippedRows,
		SkippedTraces: rep.SkippedTraces,
		Errors:        rep.ErrorCount,
	}
}
