package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// submitAs is submitJSON with a tenant identity attached via X-Tenant.
func submitAs(t *testing.T, ts *httptest.Server, ten string, req SubmitRequest) (*http.Response, JobStatus, ErrorResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", "application/json")
	if ten != "" {
		hreq.Header.Set("X-Tenant", ten)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st JobStatus
	var er ErrorResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
	} else {
		_ = json.NewDecoder(resp.Body).Decode(&er)
	}
	return resp, st, er
}

// TestSubmitRateLimited drives one tenant over a 2-per-second budget and
// checks the rejection contract: HTTP 429 tagged rate_limited, a
// limiter-derived Retry-After in header and body, budgets charged per tenant
// (a second tenant still gets in), and the rejection visible in both the
// global and the per-tenant counters.
func TestSubmitRateLimited(t *testing.T) {
	s, ts := testServer(t, func(c *Config) {
		c.TenantRates = map[time.Duration]int{time.Second: 2}
	})
	req := fig1Request(t, "heuristic-advanced")

	for i := 0; i < 2; i++ {
		resp, st, _ := submitAs(t, ts, "alpha", req)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d: HTTP %d, want 202", i+1, resp.StatusCode)
		}
		if st.Tenant != "alpha" {
			t.Errorf("submit %d: tenant = %q, want alpha", i+1, st.Tenant)
		}
	}

	resp, _, er := submitAs(t, ts, "alpha", req)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-limit submit: HTTP %d, want 429", resp.StatusCode)
	}
	if er.Reason != ReasonRateLimited {
		t.Errorf("reason = %q, want %q", er.Reason, ReasonRateLimited)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 2 {
		t.Errorf("Retry-After = %q, want an integer in [1,2]", resp.Header.Get("Retry-After"))
	}
	if er.RetryAfterSec != ra {
		t.Errorf("body retry_after_sec = %d, header %d", er.RetryAfterSec, ra)
	}

	// The budget is per tenant: beta is untouched by alpha's flood.
	if resp, _, _ := submitAs(t, ts, "beta", req); resp.StatusCode != http.StatusAccepted {
		t.Errorf("beta submit during alpha flood: HTTP %d, want 202", resp.StatusCode)
	}

	snap := s.Telemetry().Snapshot()
	if got := snap.Counter("server.jobs_rate_limited"); got != 1 {
		t.Errorf("server.jobs_rate_limited = %d, want 1", got)
	}
	if got := snap.Counter("server.tenant.alpha.rejected_rate"); got != 1 {
		t.Errorf("server.tenant.alpha.rejected_rate = %d, want 1", got)
	}
	if got := snap.Counter("server.tenant.beta.rejected_rate"); got != 0 {
		t.Errorf("server.tenant.beta.rejected_rate = %d, want 0", got)
	}
}

// TestSubmitTenantIdentity covers the identity plumbing: the query-parameter
// fallback, the default tenant for anonymous traffic, and the 400 on names
// that would not survive as telemetry segments.
func TestSubmitTenantIdentity(t *testing.T) {
	_, ts := testServer(t, nil)
	req := fig1Request(t, "heuristic-advanced")
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("query fallback", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/api/v1/jobs?tenant=team-a", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusAccepted || st.Tenant != "team-a" {
			t.Errorf("HTTP %d tenant %q, want 202 team-a", resp.StatusCode, st.Tenant)
		}
	})

	t.Run("header beats query", func(t *testing.T) {
		hreq, err := http.NewRequest(http.MethodPost, ts.URL+"/api/v1/jobs?tenant=query-t", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		hreq.Header.Set("Content-Type", "application/json")
		hreq.Header.Set("X-Tenant", "header-t")
		resp, err := http.DefaultClient.Do(hreq)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var st JobStatus
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatal(err)
		}
		if st.Tenant != "header-t" {
			t.Errorf("tenant = %q, want header-t", st.Tenant)
		}
	})

	t.Run("anonymous is default", func(t *testing.T) {
		resp, st, _ := submitAs(t, ts, "", req)
		if resp.StatusCode != http.StatusAccepted || st.Tenant != "default" {
			t.Errorf("HTTP %d tenant %q, want 202 default", resp.StatusCode, st.Tenant)
		}
	})

	t.Run("invalid name rejected", func(t *testing.T) {
		for _, bad := range []string{"has space", "semi;colon", "x/y", strings.Repeat("a", 65)} {
			resp, _, _ := submitAs(t, ts, bad, req)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("tenant %q: HTTP %d, want 400", bad, resp.StatusCode)
			}
		}
	})
}

// TestTenantQueueCap holds the single worker and fills tenant alpha's queue
// slice; alpha's next submission must bounce with 429/queue_full while beta —
// sharing the same aggregate queue — still has room.
func TestTenantQueueCap(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	s, ts := testServer(t, func(c *Config) {
		c.Workers = 1
		c.QueueDepth = 4
		c.TenantQueueDepth = 1
	})
	s.testHookBeforeRun = func(j *job) {
		select {
		case <-release:
		case <-j.ctx.Done():
		}
	}
	defer once.Do(func() { close(release) })

	req := fig1Request(t, "heuristic-advanced")
	resp1, st1, _ := submitAs(t, ts, "alpha", req) // occupies the worker
	if resp1.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1: HTTP %d", resp1.StatusCode)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		var st JobStatus
		getJSON(t, ts.URL+"/api/v1/jobs/"+st1.ID, &st)
		if st.State == StateRunning {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job 1 never started running")
		}
		time.Sleep(2 * time.Millisecond)
	}

	if resp, _, _ := submitAs(t, ts, "alpha", req); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 2 (fills alpha's slice): HTTP %d", resp.StatusCode)
	}
	resp3, _, er := submitAs(t, ts, "alpha", req)
	if resp3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 3: HTTP %d, want 429", resp3.StatusCode)
	}
	if er.Reason != ReasonQueueFull {
		t.Errorf("reason = %q, want %q", er.Reason, ReasonQueueFull)
	}
	if er.Error != "tenant queue full" {
		t.Errorf("error = %q, want \"tenant queue full\"", er.Error)
	}
	if resp3.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After header")
	}

	// The aggregate queue still has slots: beta is admitted.
	if resp, _, _ := submitAs(t, ts, "beta", req); resp.StatusCode != http.StatusAccepted {
		t.Errorf("beta submit with alpha saturated: HTTP %d, want 202", resp.StatusCode)
	}

	snap := s.Telemetry().Snapshot()
	if got := snap.Counter("server.tenant.alpha.rejected_queue"); got != 1 {
		t.Errorf("server.tenant.alpha.rejected_queue = %d, want 1", got)
	}
	if got := snap.Gauge("server.tenant.alpha.queued"); got != 1 {
		t.Errorf("server.tenant.alpha.queued = %d, want 1", got)
	}
	if got := snap.Gauge("server.tenant_queue_capacity"); got != 1 {
		t.Errorf("server.tenant_queue_capacity = %d, want 1", got)
	}

	once.Do(func() { close(release) })
}

// TestTenantLifecycleRollup runs one job to completion and one to
// cancellation under distinct tenants and checks the per-tenant counters and
// the result's tenant attribution.
func TestTenantLifecycleRollup(t *testing.T) {
	s, ts := testServer(t, nil)
	req := fig1Request(t, "heuristic-advanced")

	resp, st, _ := submitAs(t, ts, "good", req)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: HTTP %d", resp.StatusCode)
	}
	if fin := waitTerminal(t, ts, st.ID); fin.State != StateDone {
		t.Fatalf("job finished %s, want done", fin.State)
	}
	var res JobResult
	if code := getJSON(t, ts.URL+"/api/v1/jobs/"+st.ID+"/result", &res); code != http.StatusOK {
		t.Fatalf("result: HTTP %d", code)
	}
	if res.Tenant != "good" {
		t.Errorf("result tenant = %q, want good", res.Tenant)
	}

	snap := s.Telemetry().Snapshot()
	if got := snap.Counter("server.tenant.good.submitted"); got != 1 {
		t.Errorf("server.tenant.good.submitted = %d, want 1", got)
	}
	if got := snap.Counter("server.tenant.good.completed"); got != 1 {
		t.Errorf("server.tenant.good.completed = %d, want 1", got)
	}
}
