// Package server implements eventmatchd: a long-running HTTP daemon that
// accepts event-matching jobs, runs them on a bounded worker pool behind an
// admission-controlled queue, and exposes an asynchronous job lifecycle —
// submit, poll, fetch result, cancel — over a small JSON API.
//
// The daemon is the serving layer over the repository's matching pipeline:
// jobs reuse the anytime/cancellable searches of internal/match, parsed logs
// and frequency caches are shared across jobs keyed by content hash (a
// repeated match over the same log pair skips ingestion and frequency
// counting entirely), and every pool, queue, cache and job metric lands in
// one internal/telemetry registry served back on /api/v1/metrics and expvar.
//
// # Endpoints
//
//	POST   /api/v1/jobs             submit a job (JSON or multipart upload)
//	GET    /api/v1/jobs             list known jobs
//	GET    /api/v1/jobs/{id}        job status, with in-flight progress
//	GET    /api/v1/jobs/{id}/result final mapping, score, quality metrics
//	POST   /api/v1/jobs/{id}/cancel cancel (DELETE /api/v1/jobs/{id} works too)
//	POST   /api/v1/sessions         open a streaming session (log1 + patterns)
//	POST   /api/v1/sessions/{id}/events  append target traces (chunked)
//	GET    /api/v1/sessions/{id}    session status with the latest mapping
//	GET    /api/v1/sessions/{id}/watch   server-push mapping updates (JSON lines)
//	POST   /api/v1/sessions/{id}/close   drain and return the final mapping
//	DELETE /api/v1/sessions/{id}    abort the session
//	GET    /api/v1/metrics          telemetry snapshot as JSON
//	GET    /healthz                 liveness ("ok", or "draining" + 503)
//	GET    /debug/vars              expvar, including the registry snapshot
//
// # Job lifecycle
//
// A job moves through queued → running → done | failed, with canceled
// reachable from queued (and from running via the anytime contract: a
// canceled running job still completes into done with a truncated,
// best-so-far result). See DESIGN.md §9 for the full state machine.
//
// # Backpressure
//
// Admission is a non-blocking reservation against a fixed-depth queue: when
// every worker is busy and the queue is full, submission fails fast with
// HTTP 429 and a Retry-After hint derived from the observed job service
// time. Nothing ever blocks the accept loop.
package server

import (
	"time"

	"eventmatch/internal/match"
)

// JobState is one node of the job lifecycle state machine.
type JobState string

// Job lifecycle states. Terminal states are StateDone, StateFailed and
// StateCanceled.
const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued JobState = "queued"
	// StateRunning: a worker is executing the match.
	StateRunning JobState = "running"
	// StateDone: finished with a result (possibly truncated / best-so-far).
	StateDone JobState = "done"
	// StateFailed: finished with an error instead of a result.
	StateFailed JobState = "failed"
	// StateCanceled: canceled while still queued; no result exists. A job
	// canceled while running lands in StateDone with a truncated result
	// instead — the anytime searches always return their best mapping.
	StateCanceled JobState = "canceled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	switch s {
	case StateDone, StateFailed, StateCanceled:
		return true
	}
	return false
}

// LogPayload is one log in a JSON submission.
type LogPayload struct {
	// Format is "log", "csv" or "xes"; empty means sniff from the content.
	Format string `json:"format,omitempty"`
	// Data is the raw log content.
	Data string `json:"data"`
}

// SubmitRequest is the JSON submission body. Multipart submissions carry the
// same fields as form values, with the two logs as file uploads named "log1"
// and "log2" (format detected from the file name, then sniffed).
type SubmitRequest struct {
	Log1 LogPayload `json:"log1"`
	Log2 LogPayload `json:"log2"`

	// Patterns are textual complex patterns over Log1's event names.
	Patterns []string `json:"patterns,omitempty"`

	// Truth, when non-empty, is a ground-truth mapping (Log1 event name →
	// Log2 event name); the result then carries precision/recall/F-measure
	// against it.
	Truth map[string]string `json:"truth,omitempty"`

	// Algorithm names the matching algorithm (eventmatch.ParseAlgorithm);
	// empty selects heuristic-advanced.
	Algorithm string `json:"algorithm,omitempty"`

	// TimeoutMS caps the search wall clock. Zero selects the server's
	// default per-job deadline; values above the server maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`

	// MaxGenerated and MaxFrontier are the search budgets of
	// eventmatch.Config, applied as given.
	MaxGenerated int `json:"max_generated,omitempty"`
	MaxFrontier  int `json:"max_frontier,omitempty"`

	// Workers parallelizes the search; values above the server's configured
	// per-job maximum are clamped. Zero selects the server default.
	Workers int `json:"workers,omitempty"`

	// Lenient makes log ingestion skip malformed rows instead of rejecting
	// the submission.
	Lenient bool `json:"lenient,omitempty"`
}

// ProgressInfo is the in-flight effort view of a running job, fed by the
// search's progress hook.
type ProgressInfo struct {
	Expanded  int   `json:"expanded"`
	Generated int   `json:"generated"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

// JobStatus is the poll view of a job.
type JobStatus struct {
	ID        string   `json:"id"`
	State     JobState `json:"state"`
	Algorithm string   `json:"algorithm"`
	// Tenant is the tenant identity the job was submitted under ("default"
	// for unidentified traffic).
	Tenant string `json:"tenant,omitempty"`

	Created  string `json:"created"`
	Started  string `json:"started,omitempty"`
	Finished string `json:"finished,omitempty"`

	// CancelRequested reports that a cancellation has been delivered but the
	// job has not yet reached a terminal state (the anytime search is
	// checkpointing its best-so-far mapping).
	CancelRequested bool `json:"cancel_requested,omitempty"`

	// Progress is the latest in-flight snapshot while running; nil before
	// the first snapshot and for the closed-form baselines.
	Progress *ProgressInfo `json:"progress,omitempty"`

	// Truncated/StopReason surface the anytime verdict once terminal.
	Truncated  bool   `json:"truncated,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`

	// Error carries the failure message in StateFailed.
	Error string `json:"error,omitempty"`
}

// ReadInfo summarizes one log's (possibly lenient) ingestion.
type ReadInfo struct {
	Traces        int `json:"traces"`
	SkippedRows   int `json:"skipped_rows,omitempty"`
	SkippedTraces int `json:"skipped_traces,omitempty"`
	Errors        int `json:"errors,omitempty"`
}

// QualityInfo is precision/recall/F-measure against a submitted ground truth.
type QualityInfo struct {
	Correct   int     `json:"correct"`
	Found     int     `json:"found"`
	Truth     int     `json:"truth"`
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
	FMeasure  float64 `json:"f_measure"`
}

// JobResult is the final output of a done job.
type JobResult struct {
	ID        string `json:"id"`
	Algorithm string `json:"algorithm"`
	// Tenant is the tenant identity the job was submitted under.
	Tenant string `json:"tenant,omitempty"`

	// Pairs is the name-level mapping (Log1 event → Log2 event).
	Pairs map[string]string `json:"pairs"`
	// Score is the algorithm's objective value.
	Score float64 `json:"score"`

	Expanded  int   `json:"expanded"`
	Generated int   `json:"generated"`
	ElapsedMS int64 `json:"elapsed_ms"`

	// Truncated marks a best-so-far (anytime) result; StopReason names the
	// exhausted budget or the cancellation.
	Truncated  bool   `json:"truncated,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`

	// Quality is present when the submission carried a ground truth.
	Quality *QualityInfo `json:"quality,omitempty"`

	// Read1/Read2 report ingestion (present when anything was skipped).
	Read1 *ReadInfo `json:"read1,omitempty"`
	Read2 *ReadInfo `json:"read2,omitempty"`
}

// ListResponse is the GET /api/v1/jobs body.
type ListResponse struct {
	Jobs []JobStatus `json:"jobs"`
}

// SessionState is one node of the streaming-session lifecycle: open →
// closing → closed, with aborted reachable from open and closing.
type SessionState string

// Streaming-session lifecycle states.
const (
	// SessionOpen: accepting appends, publishing mapping updates.
	SessionOpen SessionState = "open"
	// SessionClosing: a close is draining the append backlog; no new appends.
	SessionClosing SessionState = "closing"
	// SessionClosed: drained cleanly; the final mapping is available.
	SessionClosed SessionState = "closed"
	// SessionAborted: terminated without draining; no final mapping.
	SessionAborted SessionState = "aborted"
)

// Terminal reports whether the session state is final.
func (s SessionState) Terminal() bool {
	return s == SessionClosed || s == SessionAborted
}

// OpenSessionRequest is the POST /api/v1/sessions body: the fixed side of an
// incremental matching problem. Target traces arrive later through the
// events endpoint.
type OpenSessionRequest struct {
	// Log1 is the source log; its alphabet is fixed for the session.
	Log1 LogPayload `json:"log1"`
	// Patterns are textual complex patterns over Log1's event names.
	Patterns []string `json:"patterns,omitempty"`
	// Algorithm selects the per-delta re-search: "exact" (A*, the default),
	// "heuristic-advanced", or "vertex-edge" (A* without user patterns).
	Algorithm string `json:"algorithm,omitempty"`
	// TimeoutMS caps each incremental re-search (not the session). Zero
	// selects the server default; values above the maximum are clamped.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Lenient makes Log1 ingestion skip malformed rows.
	Lenient bool `json:"lenient,omitempty"`
}

// SessionAppendRequest is the POST /api/v1/sessions/{id}/events body: a
// chunk of target traces, each a space-separated line of event names (the
// trace-lines log format). New event names are interned on arrival.
type SessionAppendRequest struct {
	Traces []string `json:"traces"`
}

// SessionAppendResponse acknowledges an admitted chunk.
type SessionAppendResponse struct {
	// Accepted is the total number of target traces the session has admitted
	// so far (not just this chunk).
	Accepted int `json:"accepted"`
}

// SessionUpdate is one published mapping state, served from the status
// endpoint and pushed as JSON lines from the watch endpoint.
type SessionUpdate struct {
	// Revision is the number of target traces the mapping reflects.
	Revision int `json:"revision"`
	// Pairs is the name-level mapping (Log1 event → target event).
	Pairs map[string]string `json:"pairs"`
	// Score is the mapping's pattern normal distance.
	Score float64 `json:"score"`
	// Truncated/StopReason surface the anytime verdict of the re-search that
	// produced this update.
	Truncated  bool   `json:"truncated,omitempty"`
	StopReason string `json:"stop_reason,omitempty"`
	// Final marks the last update of a cleanly closed session.
	Final bool `json:"final,omitempty"`
}

// SessionStatus is the poll view of a streaming session.
type SessionStatus struct {
	ID        string       `json:"id"`
	State     SessionState `json:"state"`
	Algorithm string       `json:"algorithm"`
	Tenant    string       `json:"tenant,omitempty"`
	Created   string       `json:"created"`

	// Accepted is the total number of admitted target traces; Update (when
	// present) reflects the first Update.Revision of them. Accepted >
	// Update.Revision means the session is still converging.
	Accepted int            `json:"accepted"`
	Update   *SessionUpdate `json:"update,omitempty"`

	// Error carries the most recent re-search failure, if any (the session
	// keeps running; the next append retries).
	Error string `json:"error,omitempty"`
}

// Rejection reasons carried in ErrorResponse.Reason on HTTP 429, so clients
// can distinguish backpressure (queue full: capacity will free as jobs
// finish) from policy (rate limited: the tenant must slow down) without
// parsing the message.
const (
	// ReasonQueueFull: the admission queue (aggregate or the tenant's own
	// slice of it) is at capacity. Retry-After derives from the observed job
	// service time.
	ReasonQueueFull = "queue_full"
	// ReasonRateLimited: the tenant exceeded a configured rate window.
	// Retry-After derives from the limiter's earliest-admissible instant.
	ReasonRateLimited = "rate_limited"
)

// ErrorResponse is the body of every non-2xx API response.
type ErrorResponse struct {
	Error string `json:"error"`
	// Reason machine-tags HTTP 429 rejections: ReasonQueueFull or
	// ReasonRateLimited.
	Reason string `json:"reason,omitempty"`
	// RetryAfterSec accompanies HTTP 429: the suggested backoff, also sent
	// as a Retry-After header.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
	// State carries the job's lifecycle state on result-endpoint errors, so
	// clients can distinguish "terminal, no result will ever exist" (failed,
	// canceled) from "not yet" (queued, running) without parsing the message.
	State JobState `json:"state,omitempty"`
	// StopReason names what ended the job when that is known (e.g.
	// "canceled" for a job canceled before it started).
	StopReason string `json:"stop_reason,omitempty"`
}

// progressInfo converts a search snapshot to its wire form.
func progressInfo(p match.Progress) *ProgressInfo {
	return &ProgressInfo{
		Expanded:  p.Expanded,
		Generated: p.Generated,
		ElapsedMS: p.Elapsed.Milliseconds(),
	}
}

// stamp renders a timestamp for the status DTO; zero times render empty.
func stamp(t time.Time) string {
	if t.IsZero() {
		return ""
	}
	return t.UTC().Format(time.RFC3339Nano)
}
