package server

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"time"

	"eventmatch/internal/event"
	"eventmatch/internal/match"
	"eventmatch/internal/server/store"
	"eventmatch/internal/server/tenant"
)

// This file is the server side of the durability layer: translating the job
// lifecycle into journal records (write-ahead), shipping uploaded logs and
// results into the artifact store, and rebuilding jobs from a replayed
// journal on boot.
//
// Persistence failures are counted (server.persist_errors) but never take
// the service down: a daemon with a sick disk degrades to the in-memory
// behavior instead of refusing work. The one place durability gates
// correctness — the crash-recovery e2e — exercises the happy path.

// persistLogArtifact stores one uploaded log under its content key. No-op
// without a store; idempotent by content addressing.
func (s *Server) persistLogArtifact(key string, data []byte) {
	if s.store == nil {
		return
	}
	if err := s.store.PutArtifact(s.persistCtx, key, data); err != nil {
		s.persistErrs.Inc()
	}
}

// persistSubmit journals a freshly admitted job's spec. The log artifacts
// were already stored by ingest, so the record only carries their keys.
func (s *Server) persistSubmit(ctx context.Context, j *job) {
	if s.store == nil {
		return
	}
	spec := j.spec
	rec := &store.SpecRecord{
		Algorithm:       spec.algoName,
		Tenant:          spec.tenant,
		Log1:            store.LogRef{Key: spec.h1, Format: spec.fmt1},
		Log2:            store.LogRef{Key: spec.h2, Format: spec.fmt2},
		Patterns:        spec.patterns,
		Truth:           spec.truthNames,
		TimeoutMS:       spec.timeout.Milliseconds(),
		MaxGenerated:    spec.maxGenerated,
		MaxFrontier:     spec.maxFrontier,
		Workers:         spec.workers,
		Lenient:         spec.lenient,
		CreatedUnixNano: j.created.UnixNano(),
	}
	if err := s.store.AppendSubmit(ctx, j.id, rec, time.Now().UnixNano()); err != nil {
		s.persistErrs.Inc()
	}
}

// statePersister returns the job's persist hook: it journals one lifecycle
// transition and is called under the job mutex before the in-memory change.
// It uses the detached persist context so the shutdown force-cancel cannot
// abort the final done/failed records. Nil without a store.
func (s *Server) statePersister(id string) func(state JobState, errMsg string) {
	if s.store == nil {
		return nil
	}
	return func(state JobState, errMsg string) {
		if err := s.store.AppendState(s.persistCtx, id, string(state), errMsg, time.Now().UnixNano()); err != nil {
			s.persistErrs.Inc()
		}
	}
}

// persistResult stores a done job's result blob and journals the binding.
// The result record lands BEFORE the done transition (runJob calls this
// ahead of j.finish), so on replay a stored result proves completion.
func (s *Server) persistResult(j *job, res *JobResult) {
	if s.store == nil {
		return
	}
	data, err := json.Marshal(res)
	if err != nil {
		s.persistErrs.Inc()
		return
	}
	hash, err := s.store.PutResult(s.persistCtx, data)
	if err != nil {
		s.persistErrs.Inc()
		return
	}
	if err := s.store.AppendResult(s.persistCtx, j.id, hash, time.Now().UnixNano()); err != nil {
		s.persistErrs.Inc()
	}
}

// persistSessionOpen journals a freshly opened session's fixed side. The
// source-log artifact was already stored by ingest.
func (s *Server) persistSessionOpen(ctx context.Context, ss *streamSession) {
	if s.store == nil {
		return
	}
	rec := &store.SessionRecord{
		Algorithm:       ss.spec.algoName,
		Tenant:          ss.spec.tenant,
		Log1:            store.LogRef{Key: ss.spec.h1, Format: ss.spec.fmt1},
		Patterns:        ss.spec.patterns,
		TimeoutMS:       ss.spec.timeout.Milliseconds(),
		Lenient:         ss.spec.lenient,
		CreatedUnixNano: ss.created.UnixNano(),
	}
	if err := s.store.AppendSessionOpen(ctx, ss.id, rec, time.Now().UnixNano()); err != nil {
		s.persistErrs.Inc()
	}
}

// persistSessionDelta journals one admitted chunk. Called under the session
// mutex, between the fair-queue push and the acknowledgment — the journal's
// delta order is the admission order, which is the apply order.
func (s *Server) persistSessionDelta(ss *streamSession, traces [][]string) {
	if s.store == nil {
		return
	}
	if err := s.store.AppendSessionDelta(s.persistCtx, ss.id, sessionTraceLines(traces), time.Now().UnixNano()); err != nil {
		s.persistErrs.Inc()
	}
}

// persistSessionClose journals a session's terminal state; clean closes carry
// the final published mapping so restarts serve it without recomputation.
func (s *Server) persistSessionClose(ss *streamSession, state string) {
	if s.store == nil {
		return
	}
	var final *store.SessionFinalRecord
	if state == string(SessionClosed) && ss.last != nil {
		final = &store.SessionFinalRecord{
			Revision: ss.last.Revision,
			Pairs:    ss.last.Pairs,
			Score:    ss.last.Score,
		}
	}
	if err := s.store.AppendSessionClose(s.persistCtx, ss.id, state, final, time.Now().UnixNano()); err != nil {
		s.persistErrs.Inc()
	}
}

// ckptMsg is one checkpoint on its way to the journal.
type ckptMsg struct {
	jobID string
	rec   *store.CheckpointRecord
}

// checkpointHook adapts the search's checkpoint callback to the async
// journal writer. The hook runs synchronously on the search goroutine, so it
// must not block: a full writer queue drops the snapshot (counted) — the
// next one is at most a checkpoint interval away.
func (s *Server) checkpointHook(j *job) func(match.Checkpoint) {
	if s.store == nil {
		return nil
	}
	spec := j.spec
	return func(ck match.Checkpoint) {
		msg := ckptMsg{
			jobID: j.id,
			rec: &store.CheckpointRecord{
				Pairs:     namePairs(spec.l1, spec.l2, ck.Mapping),
				Score:     ck.Score,
				Expanded:  ck.Expanded,
				Generated: ck.Generated,
				ElapsedMS: ck.Elapsed.Milliseconds(),
			},
		}
		select {
		case s.ckptCh <- msg:
		default:
			s.ckptDrops.Inc()
		}
	}
}

// checkpointWriter drains ckptCh onto the journal. It exits when Shutdown
// closes the channel (after all workers — the only senders — have exited).
func (s *Server) checkpointWriter() {
	defer close(s.ckptdone)
	for msg := range s.ckptCh {
		if err := s.store.AppendCheckpoint(s.persistCtx, msg.jobID, msg.rec, time.Now().UnixNano()); err != nil {
			s.persistErrs.Inc()
		}
	}
}

// RecoverySummary reports what Recover reconstructed from the journal.
type RecoverySummary struct {
	// Jobs is the total number of journaled jobs restored into the job store.
	Jobs int
	// Results is how many completed jobs came back with their result served
	// from the artifact store.
	Results int
	// Requeued is how many interrupted (queued or running) jobs were
	// re-enqueued for execution, re-seeded from their last checkpoint.
	Requeued int
	// Failed is how many jobs could not be reconstructed (lost artifacts,
	// spec no longer valid) and were marked failed.
	Failed int
	// Sessions is the total number of journaled streaming sessions restored.
	Sessions int
	// SessionsResumed is how many of them came back live: their journaled
	// deltas were replayed into a fresh matching core, which converges to the
	// same mapping the pre-crash session would have published.
	SessionsResumed int
}

// Recover rebuilds the job store from a journal replay. Completed jobs are
// restored with their results loaded from the artifact store; interrupted
// jobs are re-enqueued (their searches re-seeded from the last persisted
// checkpoint, so the re-run can never score below what was already
// journaled); unrecoverable jobs are marked failed, durably. Call once,
// after New and before serving traffic.
func (s *Server) Recover(rec *store.Recovery) RecoverySummary {
	var sum RecoverySummary
	if s.store == nil || rec == nil {
		return sum
	}
	s.jobs.bumpSeq(rec.MaxJobSeq)
	var requeue []*job
	for _, rj := range rec.Jobs {
		j, enqueue := s.recoverJob(rj, &sum)
		s.jobs.addRecovered(j, rj.ID)
		j.persist = s.statePersister(rj.ID)
		if enqueue {
			requeue = append(requeue, j)
		}
	}
	sum.Jobs = len(rec.Jobs)
	s.sessions.bumpSeq(rec.MaxSessionSeq)
	for _, rs := range rec.Sessions {
		s.recoverSession(rs, &sum)
	}
	sum.Sessions = len(rec.Sessions)
	if len(requeue) > 0 {
		go s.feedRecovered(requeue)
	}
	return sum
}

// recoverSession restores one replayed session. Terminal sessions come back
// as status-only records (the clean-close final mapping is served from the
// journal); open sessions are rebuilt live — the source log from the artifact
// store, every journaled delta replayed into a fresh core in admission order,
// which coalesces them into one re-search and converges to the same mapping
// as the pre-crash session.
func (s *Server) recoverSession(rs *store.RecoveredSession, sum *RecoverySummary) {
	created := time.Now()
	if rs.Spec.CreatedUnixNano > 0 {
		created = time.Unix(0, rs.Spec.CreatedUnixNano)
	}
	total := 0
	for _, d := range rs.Deltas {
		total += len(d)
	}

	if rs.Terminal() {
		ss := &streamSession{
			spec: sessionSpec{
				algoName: rs.Spec.Algorithm,
				tenant:   tenant.Normalize(rs.Spec.Tenant),
			},
			created:  created,
			state:    SessionState(rs.State),
			accepted: total,
			watchers: make(map[int]chan SessionUpdate),
		}
		ss.cond = sync.NewCond(&ss.mu)
		if rs.Final != nil {
			ss.last = &SessionUpdate{
				Revision: rs.Final.Revision,
				Pairs:    rs.Final.Pairs,
				Score:    rs.Final.Score,
				Final:    true,
			}
		}
		s.sessions.addRecovered(ss, rs.ID)
		return
	}

	failTerminal := func(msg string) {
		ss := &streamSession{
			spec:     sessionSpec{algoName: rs.Spec.Algorithm, tenant: tenant.Normalize(rs.Spec.Tenant)},
			created:  created,
			state:    SessionAborted,
			accepted: total,
			errMsg:   msg,
			watchers: make(map[int]chan SessionUpdate),
		}
		ss.cond = sync.NewCond(&ss.mu)
		s.sessions.addRecovered(ss, rs.ID)
		// The verdict must survive the next restart too.
		if err := s.store.AppendSessionClose(s.persistCtx, rs.ID, string(SessionAborted), nil, time.Now().UnixNano()); err != nil {
			s.persistErrs.Inc()
		}
	}

	raw, err := s.store.Artifact(s.persistCtx, rs.Spec.Log1.Key)
	if err != nil {
		failTerminal(fmt.Sprintf("recovery: log1 artifact %s lost: %v", rs.Spec.Log1.Key, err))
		return
	}
	spec, err := s.buildSessionSpec(OpenSessionRequest{
		Log1:      LogPayload{Format: rs.Spec.Log1.Format, Data: string(raw)},
		Patterns:  rs.Spec.Patterns,
		Algorithm: rs.Spec.Algorithm,
		TimeoutMS: rs.Spec.TimeoutMS,
		Lenient:   rs.Spec.Lenient,
	})
	if err != nil {
		failTerminal(fmt.Sprintf("recovery: %v", err))
		return
	}
	spec.tenant = tenant.Normalize(rs.Spec.Tenant)

	// Size the core inbox for the whole replay so a single Append call feeds
	// every delta; the writer coalesces them into one converging re-search.
	maxPending := s.cfg.SessionBacklog
	if total > maxPending {
		maxPending = total
	}
	ss, err := s.startSession(spec, event.NewLog(), total, maxPending)
	if err != nil {
		failTerminal(fmt.Sprintf("recovery: %v", err))
		return
	}
	ss.created = created
	var replayed [][]string
	for _, chunk := range rs.Deltas {
		for _, line := range chunk {
			replayed = append(replayed, strings.Fields(line))
		}
	}
	if len(replayed) > 0 {
		if _, err := ss.core.Append(replayed...); err != nil {
			ss.core.Abort()
			failTerminal(fmt.Sprintf("recovery: replaying deltas: %v", err))
			return
		}
	}
	s.sessions.addRecovered(ss, rs.ID)
	sum.SessionsResumed++
}

// recoverJob turns one replayed job into a live *job, reporting whether it
// still needs to run. Terminal jobs are reconstructed in place; interrupted
// ones get their spec rebuilt from the stored artifacts.
func (s *Server) recoverJob(rj *store.RecoveredJob, sum *RecoverySummary) (j *job, enqueue bool) {
	created := time.Now()
	if rj.Spec.CreatedUnixNano > 0 {
		created = time.Unix(0, rj.Spec.CreatedUnixNano)
	}
	ctx, cancel := context.WithCancel(s.baseCtx)
	j = &job{
		spec: jobSpec{
			algoName: rj.Spec.Algorithm,
			tenant:   tenant.Normalize(rj.Spec.Tenant),
		},
		created: created,
		ctx:     ctx,
		cancel:  cancel,
	}

	fail := func(msg string) (*job, bool) {
		sum.Failed++
		cancel()
		j.state = StateFailed
		j.errMsg = msg
		j.finished = time.Now()
		// The in-memory verdict must survive the next restart too.
		if err := s.store.AppendState(s.persistCtx, rj.ID, string(StateFailed), msg, time.Now().UnixNano()); err != nil {
			s.persistErrs.Inc()
		}
		return j, false
	}

	// A stored result proves completion no matter what the last state record
	// said (the result record is ordered before the done transition).
	if rj.ResultHash != "" {
		data, err := s.store.Artifact(s.persistCtx, rj.ResultHash)
		if err != nil {
			return fail(fmt.Sprintf("recovery: result artifact %s lost: %v", rj.ResultHash, err))
		}
		var res JobResult
		if err := json.Unmarshal(data, &res); err != nil {
			return fail(fmt.Sprintf("recovery: result artifact %s unreadable: %v", rj.ResultHash, err))
		}
		sum.Results++
		cancel()
		j.state = StateDone
		j.result = &res
		j.finished = time.Now()
		return j, false
	}

	switch JobState(rj.State) {
	case StateFailed, StateCanceled:
		cancel()
		j.state = JobState(rj.State)
		j.errMsg = rj.Error
		j.finished = time.Now()
		return j, false
	case StateDone:
		// Done without a result record should be impossible under the
		// write-ahead ordering; treat a journal that claims it as lossy.
		return fail("recovery: job marked done but no result was journaled")
	}

	// Interrupted (queued or running): rebuild the spec from artifacts and
	// run it again, seeded by the best journaled checkpoint.
	spec, err := s.rebuildSpec(rj)
	if err != nil {
		return fail(fmt.Sprintf("recovery: %v", err))
	}
	j.spec = spec
	j.state = StateQueued
	sum.Requeued++
	return j, true
}

// rebuildSpec reconstructs a runnable jobSpec from a journaled spec record:
// the raw logs come back from the artifact store and go through the same
// validation path as a fresh submission, and the checkpoint (if any) is
// resolved to an id-level seed mapping.
func (s *Server) rebuildSpec(rj *store.RecoveredJob) (jobSpec, error) {
	log1, err := s.store.Artifact(s.persistCtx, rj.Spec.Log1.Key)
	if err != nil {
		return jobSpec{}, fmt.Errorf("log1 artifact %s: %w", rj.Spec.Log1.Key, err)
	}
	log2, err := s.store.Artifact(s.persistCtx, rj.Spec.Log2.Key)
	if err != nil {
		return jobSpec{}, fmt.Errorf("log2 artifact %s: %w", rj.Spec.Log2.Key, err)
	}
	spec, err := s.buildSpec(SubmitRequest{
		Log1:         LogPayload{Format: rj.Spec.Log1.Format, Data: string(log1)},
		Log2:         LogPayload{Format: rj.Spec.Log2.Format, Data: string(log2)},
		Patterns:     rj.Spec.Patterns,
		Truth:        rj.Spec.Truth,
		Algorithm:    rj.Spec.Algorithm,
		TimeoutMS:    rj.Spec.TimeoutMS,
		MaxGenerated: rj.Spec.MaxGenerated,
		MaxFrontier:  rj.Spec.MaxFrontier,
		Workers:      rj.Spec.Workers,
		Lenient:      rj.Spec.Lenient,
	})
	if err != nil {
		return jobSpec{}, err
	}
	// The tenant is transport-level identity, not part of the submission
	// body, so buildSpec cannot restore it — re-attach it from the record
	// (pre-tenancy journals recover as the default tenant).
	spec.tenant = tenant.Normalize(rj.Spec.Tenant)
	if rj.Checkpoint != nil {
		spec.seed = resolveSeed(rj.Checkpoint.Pairs, spec.l1, spec.l2)
	}
	return spec, nil
}

// resolveSeed maps a checkpoint's name pairs back onto event ids. Unlike a
// ground truth, a seed is best-effort: names that no longer resolve are
// skipped, and a seed that comes out non-injective is simply ignored by the
// search (match.Options.Seed validates before flooring).
func resolveSeed(pairs map[string]string, l1, l2 *event.Log) match.Mapping {
	if len(pairs) == 0 {
		return nil
	}
	m := match.NewMapping(l1.NumEvents())
	for n1, n2 := range pairs {
		v1 := l1.Alphabet.Lookup(n1)
		v2 := l2.Alphabet.Lookup(n2)
		if v1 == event.None || v2 == event.None {
			continue
		}
		m[v1] = v2
	}
	return m
}

// feedRecovered re-enqueues recovered jobs. pool.submit is non-blocking, so
// a recovery larger than the queue feeds in as workers free slots; if the
// server starts draining first, the leftovers stay journaled as queued and
// simply recover again on the next boot.
func (s *Server) feedRecovered(jobs []*job) {
	for _, j := range jobs {
		for {
			err := s.pool.submit(j)
			if err == nil {
				s.submitted.Inc()
				s.tenantStats(j.spec.tenant).submitted.Inc()
				break
			}
			if err == errDraining {
				return
			}
			select {
			case <-s.baseCtx.Done():
				return
			case <-time.After(50 * time.Millisecond):
			}
		}
	}
}
