package server

import (
	"fmt"
	"net/http"

	"eventmatch/internal/server/tenant"
	"eventmatch/internal/telemetry"
)

// tenantStats is one tenant's telemetry rollup. Instances materialize
// lazily on a tenant's first appearance (submission, rejection, or
// recovery) and register under server.tenant.<name>.*, so the
// /api/v1/metrics snapshot carries a per-tenant breakdown next to the
// global counters.
type tenantStats struct {
	submitted, completed, failed, canceled *telemetry.Counter
	rejectedQueue, rejectedRate            *telemetry.Counter
	waitTimer                              *telemetry.Timer
}

// tenantStats returns (creating on first use) the rollup for one tenant.
// The name must already be normalized — every caller passes a jobSpec
// tenant or a validated request tenant.
func (s *Server) tenantStats(name string) *tenantStats {
	s.tenantsMu.Lock()
	defer s.tenantsMu.Unlock()
	if st := s.tenants[name]; st != nil {
		return st
	}
	prefix := "server.tenant." + name + "."
	st := &tenantStats{
		submitted:     s.reg.Counter(prefix + "submitted"),
		completed:     s.reg.Counter(prefix + "completed"),
		failed:        s.reg.Counter(prefix + "failed"),
		canceled:      s.reg.Counter(prefix + "canceled"),
		rejectedQueue: s.reg.Counter(prefix + "rejected_queue"),
		rejectedRate:  s.reg.Counter(prefix + "rejected_rate"),
		waitTimer:     s.reg.Timer(prefix + "job_wait"),
	}
	s.reg.RegisterFunc(prefix+"queued", func() int64 { return int64(s.pool.tenantQueued(name)) })
	s.tenants[name] = st
	return st
}

// requestTenant extracts and validates the tenant identity of one HTTP
// request: the X-Tenant header, then the ?tenant= query parameter, then the
// default tenant. Invalid names (telemetry-unsafe characters, over-long)
// are client errors.
func requestTenant(r *http.Request) (string, error) {
	name := r.Header.Get("X-Tenant")
	if name == "" {
		name = r.URL.Query().Get("tenant")
	}
	name = tenant.Normalize(name)
	if !tenant.ValidName(name) {
		return "", fmt.Errorf("invalid tenant %q: want 1-%d characters of [A-Za-z0-9._-]",
			name, tenant.MaxNameLen)
	}
	return name, nil
}
