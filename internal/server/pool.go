package server

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"eventmatch/internal/server/tenant"
)

// errSaturated reports that the admission queue cannot take the job — the
// HTTP layer turns it into 429 + Retry-After. errTenantSaturated is the
// per-tenant flavor (the submitting tenant's own queue slice is full while
// the aggregate queue may still have room); it wraps errSaturated so every
// existing errors.Is check keeps working.
var (
	errSaturated       = errors.New("server: job queue full")
	errTenantSaturated = fmt.Errorf("%w for tenant", errSaturated)
)

// errDraining reports that the server has stopped admitting jobs — the HTTP
// layer turns it into 503.
var errDraining = errors.New("server: draining")

// pool is the bounded worker pool behind the admission queue. Admission is
// strictly non-blocking: either the job lands in its tenant's queue
// immediately or the caller gets errSaturated / errTenantSaturated. The
// accept loop never waits on the matching engine.
//
// Scheduling is weighted-fair across tenants (tenant.FairQueue stride
// scheduling): workers always pull from the backlogged tenant with the
// least consumed virtual time, so one tenant's flood delays another
// tenant's jobs by at most one stride round — never by the flood's length.
// With a single tenant the fair queue degenerates to the former global
// FIFO, preserving single-tenant behavior exactly.
type pool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	fq       *tenant.FairQueue[*job] // guarded by mu
	draining bool

	wg      sync.WaitGroup
	running atomic.Int64 // jobs currently executing (telemetry gauge)

	run func(*job) // the job executor (Server.runJob)
}

// newPool starts `workers` goroutines consuming a weighted-fair queue of
// aggregate depth `depth` with per-tenant depth cap `perTenant` (values < 1
// or > depth clamp to depth) and the given tenant weights (nil = all 1).
func newPool(workers, depth, perTenant int, weights map[string]int, run func(*job)) *pool {
	p := &pool{
		fq:  tenant.NewFairQueue[*job](depth, perTenant, weights),
		run: run,
	}
	p.cond = sync.NewCond(&p.mu)
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for {
		p.mu.Lock()
		for p.fq.Len() == 0 && !p.draining {
			p.cond.Wait()
		}
		j, _, ok := p.fq.Pop()
		p.mu.Unlock()
		if !ok {
			return // draining and the queue is fully consumed
		}
		if !j.start() { // canceled while queued
			continue
		}
		p.running.Add(1)
		p.run(j)
		p.running.Add(-1)
	}
}

// submit admits a job into its tenant's queue or fails fast. The job's
// tenant comes from its spec; the mutex serializes against drain and the
// fair queue's bookkeeping — nothing here ever blocks on job execution.
func (p *pool) submit(j *job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return errDraining
	}
	if err := p.fq.Push(j.spec.tenant, j); err != nil {
		if errors.Is(err, tenant.ErrTenantFull) {
			return errTenantSaturated
		}
		return errSaturated
	}
	p.cond.Signal()
	return nil
}

// queued reports the current aggregate queue occupancy.
func (p *pool) queued() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fq.Len()
}

// tenantQueued reports one tenant's queue occupancy (telemetry gauge).
func (p *pool) tenantQueued(name string) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fq.TenantLen(name)
}

// drain stops admission, lets the workers finish every tenant queue, and
// returns once all workers have exited. Safe to call once; submit returns
// errDraining afterwards.
func (p *pool) drain() {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		p.cond.Broadcast()
	}
	p.mu.Unlock()
	p.wg.Wait()
}
