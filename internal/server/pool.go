package server

import (
	"errors"
	"sync"
	"sync/atomic"
)

// errSaturated reports that the admission queue is full — the HTTP layer
// turns it into 429 + Retry-After.
var errSaturated = errors.New("server: job queue full")

// errDraining reports that the server has stopped admitting jobs — the HTTP
// layer turns it into 503.
var errDraining = errors.New("server: draining")

// pool is the bounded worker pool behind the admission queue. Submission is
// strictly non-blocking: either the job lands in the buffered queue
// immediately or the caller gets errSaturated. The accept loop never waits
// on the matching engine.
type pool struct {
	queue   chan *job
	wg      sync.WaitGroup
	running atomic.Int64 // jobs currently executing (telemetry gauge)

	mu       sync.Mutex
	draining bool

	run func(*job) // the job executor (Server.runJob)
}

// newPool starts workers goroutines consuming a queue of the given depth.
func newPool(workers, depth int, run func(*job)) *pool {
	p := &pool{
		queue: make(chan *job, depth),
		run:   run,
	}
	for i := 0; i < workers; i++ {
		p.wg.Add(1)
		go p.worker()
	}
	return p
}

func (p *pool) worker() {
	defer p.wg.Done()
	for j := range p.queue {
		if !j.start() { // canceled while queued
			continue
		}
		p.running.Add(1)
		p.run(j)
		p.running.Add(-1)
	}
}

// submit admits a job or fails fast. The mutex only serializes the
// draining-check against drain's close(p.queue) — the select itself never
// blocks.
func (p *pool) submit(j *job) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.draining {
		return errDraining
	}
	select {
	case p.queue <- j:
		return nil
	default:
		return errSaturated
	}
}

// queued reports the current queue occupancy.
func (p *pool) queued() int { return len(p.queue) }

// drain stops admission, lets the workers finish the queue, and returns once
// every worker has exited. Safe to call once; submit returns errDraining
// afterwards.
func (p *pool) drain() {
	p.mu.Lock()
	if !p.draining {
		p.draining = true
		close(p.queue)
	}
	p.mu.Unlock()
	p.wg.Wait()
}
