// Package viz renders matching results for human inspection: a Graphviz
// document showing both dependency graphs side by side with the discovered
// correspondence drawn between them (the picture the paper's Fig. 1 draws
// by hand).
package viz

import (
	"fmt"
	"strings"

	"eventmatch/internal/depgraph"
	"eventmatch/internal/event"
	"eventmatch/internal/match"
)

// MappingDot renders G1 and G2 as two clusters with dashed correspondence
// edges for every mapped pair. The output is a complete digraph document
// for dot(1).
func MappingDot(g1, g2 *depgraph.Graph, m match.Mapping) string {
	var b strings.Builder
	b.WriteString("digraph eventmatch {\n")
	b.WriteString("  rankdir=LR;\n  compound=true;\n")
	writeCluster(&b, "L1", "cluster_l1", "l1", g1)
	writeCluster(&b, "L2", "cluster_l2", "l2", g2)
	for v1, v2 := range m {
		if v2 == event.None {
			continue
		}
		fmt.Fprintf(&b, "  %s -> %s [style=dashed, dir=none, color=gray, constraint=false];\n",
			nodeID("l1", v1), nodeID("l2", int(v2)))
	}
	b.WriteString("}\n")
	return b.String()
}

func writeCluster(b *strings.Builder, label, cluster, prefix string, g *depgraph.Graph) {
	fmt.Fprintf(b, "  subgraph %s {\n    label=%q;\n", cluster, label)
	a := g.Alphabet()
	for v := 0; v < g.NumVertices(); v++ {
		fmt.Fprintf(b, "    %s [label=\"%s\\n%.2f\"];\n",
			nodeID(prefix, v), a.Name(event.ID(v)), g.VertexFreq(event.ID(v)))
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(b, "    %s -> %s [label=\"%.2f\"];\n",
			nodeID(prefix, int(e.From)), nodeID(prefix, int(e.To)), g.EdgeFreq(e.From, e.To))
	}
	b.WriteString("  }\n")
}

func nodeID(prefix string, v int) string { return fmt.Sprintf("%s_%d", prefix, v) }

// MappingTable renders the correspondence as an aligned text table with an
// optional ground truth column.
func MappingTable(l1, l2 *event.Log, m, truth match.Mapping) string {
	var b strings.Builder
	width := 0
	for v1 := range m {
		if n := len(l1.Alphabet.Name(event.ID(v1))); n > width {
			width = n
		}
	}
	for v1, v2 := range m {
		name1 := l1.Alphabet.Name(event.ID(v1))
		name2 := "-"
		if v2 != event.None {
			name2 = l2.Alphabet.Name(v2)
		}
		fmt.Fprintf(&b, "%-*s -> %s", width, name1, name2)
		if truth != nil && v1 < len(truth) && truth[v1] != event.None {
			if truth[v1] == v2 {
				b.WriteString("  [ok]")
			} else {
				fmt.Fprintf(&b, "  [truth: %s]", l2.Alphabet.Name(truth[v1]))
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
