package viz

import (
	"strings"
	"testing"

	"eventmatch/internal/depgraph"
	"eventmatch/internal/event"
	"eventmatch/internal/match"
)

func testLogs() (*event.Log, *event.Log, match.Mapping) {
	l1 := event.FromStrings("A B", "A B")
	l2 := event.FromStrings("x y", "x y")
	m := match.Mapping{0, 1}
	return l1, l2, m
}

func TestMappingDot(t *testing.T) {
	l1, l2, m := testLogs()
	dot := MappingDot(depgraph.Build(l1), depgraph.Build(l2), m)
	for _, frag := range []string{
		"digraph eventmatch",
		"cluster_l1",
		"cluster_l2",
		`label="A\n1.00"`,
		`label="x\n1.00"`,
		"l1_0 -> l1_1",   // G1 edge A->B
		"l2_0 -> l2_1",   // G2 edge x->y
		"l1_0 -> l2_0 [", // mapping edge
		"style=dashed",
	} {
		if !strings.Contains(dot, frag) {
			t.Errorf("dot missing %q:\n%s", frag, dot)
		}
	}
}

func TestMappingDotSkipsUnmapped(t *testing.T) {
	l1, l2, _ := testLogs()
	m := match.Mapping{0, event.None}
	dot := MappingDot(depgraph.Build(l1), depgraph.Build(l2), m)
	if strings.Contains(dot, "l1_1 -> l2_") {
		t.Error("unmapped vertex should have no correspondence edge")
	}
}

func TestMappingTable(t *testing.T) {
	l1, l2, m := testLogs()
	truth := match.Mapping{0, 0} // truth says B -> x: mismatch for B
	table := MappingTable(l1, l2, m, truth)
	if !strings.Contains(table, "A -> x  [ok]") {
		t.Errorf("table missing ok row:\n%s", table)
	}
	if !strings.Contains(table, "B -> y  [truth: x]") {
		t.Errorf("table missing mismatch row:\n%s", table)
	}
	// Without truth, no annotations.
	plain := MappingTable(l1, l2, m, nil)
	if strings.Contains(plain, "[ok]") || strings.Contains(plain, "truth") {
		t.Errorf("plain table has annotations:\n%s", plain)
	}
}

func TestMappingTableUnmapped(t *testing.T) {
	l1, l2, _ := testLogs()
	m := match.Mapping{event.None, 1}
	table := MappingTable(l1, l2, m, nil)
	if !strings.Contains(table, "A -> -") {
		t.Errorf("unmapped row missing:\n%s", table)
	}
}
