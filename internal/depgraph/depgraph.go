// Package depgraph builds the event dependency graph of Definition 1 in the
// paper: a labeled directed graph whose vertices are events and whose edges
// connect events that occur consecutively in at least one trace, labeled with
// normalized frequencies.
//
// For an event v, f(v,v) is the fraction of traces containing v. For an edge
// (v,u), f(v,u) is the fraction of traces where v is immediately followed by
// u at least once. Edges with frequency 0 are not materialized.
package depgraph

import (
	"fmt"
	"sort"
	"strings"

	"eventmatch/internal/event"
)

// Edge identifies a directed dependency edge between two events.
type Edge struct {
	From, To event.ID
}

// Graph is an event dependency graph G(V, E, f) over a log's alphabet.
type Graph struct {
	alphabet   *event.Alphabet
	n          int
	vertexFreq []float64
	edgeFreq   map[Edge]float64
	succ       [][]event.ID // adjacency: out-neighbours per vertex, sorted
	pred       [][]event.ID // adjacency: in-neighbours per vertex, sorted
}

// Build constructs the dependency graph of a log.
func Build(l *event.Log) *Graph {
	n := l.NumEvents()
	g := &Graph{
		alphabet:   l.Alphabet,
		n:          n,
		vertexFreq: make([]float64, n),
		edgeFreq:   make(map[Edge]float64),
	}
	if l.NumTraces() == 0 {
		g.buildAdjacency()
		return g
	}
	seenV := make([]bool, n)
	seenE := make(map[Edge]bool)
	for _, t := range l.Traces {
		for i := range seenV {
			seenV[i] = false
		}
		for k := range seenE {
			delete(seenE, k)
		}
		for i, e := range t {
			if !seenV[e] {
				seenV[e] = true
				g.vertexFreq[e]++
			}
			if i+1 < len(t) {
				ed := Edge{e, t[i+1]}
				if !seenE[ed] {
					seenE[ed] = true
					g.edgeFreq[ed]++
				}
			}
		}
	}
	inv := 1 / float64(l.NumTraces())
	for i := range g.vertexFreq {
		g.vertexFreq[i] *= inv
	}
	for k, v := range g.edgeFreq {
		g.edgeFreq[k] = v * inv
	}
	g.buildAdjacency()
	return g
}

func (g *Graph) buildAdjacency() {
	g.succ = make([][]event.ID, g.n)
	g.pred = make([][]event.ID, g.n)
	for e := range g.edgeFreq {
		g.succ[e.From] = append(g.succ[e.From], e.To)
		g.pred[e.To] = append(g.pred[e.To], e.From)
	}
	for i := 0; i < g.n; i++ {
		sort.Slice(g.succ[i], func(a, b int) bool { return g.succ[i][a] < g.succ[i][b] })
		sort.Slice(g.pred[i], func(a, b int) bool { return g.pred[i][a] < g.pred[i][b] })
	}
}

// NumVertices reports the number of vertices (the alphabet size).
func (g *Graph) NumVertices() int { return g.n }

// NumEdges reports the number of edges with nonzero frequency.
func (g *Graph) NumEdges() int { return len(g.edgeFreq) }

// Alphabet returns the alphabet the graph was built over.
func (g *Graph) Alphabet() *event.Alphabet { return g.alphabet }

// VertexFreq returns f(v,v), the normalized frequency of event v.
func (g *Graph) VertexFreq(v event.ID) float64 { return g.vertexFreq[v] }

// EdgeFreq returns f(v,u) for the edge v→u, or 0 if the edge is absent.
func (g *Graph) EdgeFreq(v, u event.ID) float64 { return g.edgeFreq[Edge{v, u}] }

// HasEdge reports whether v→u has nonzero frequency.
func (g *Graph) HasEdge(v, u event.ID) bool {
	_, ok := g.edgeFreq[Edge{v, u}]
	return ok
}

// Successors returns the out-neighbours of v in ascending id order. The
// returned slice must not be modified.
func (g *Graph) Successors(v event.ID) []event.ID { return g.succ[v] }

// Predecessors returns the in-neighbours of v in ascending id order. The
// returned slice must not be modified.
func (g *Graph) Predecessors(v event.ID) []event.ID { return g.pred[v] }

// Edges returns all edges sorted by (From, To); handy for deterministic
// iteration in tools and tests.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, 0, len(g.edgeFreq))
	for e := range g.edgeFreq {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// MaxVertexFreq returns the highest vertex frequency among the given vertex
// set; it underlies the tight bound's fn term. Returns 0 for an empty set.
func (g *Graph) MaxVertexFreq(set []event.ID) float64 {
	max := 0.0
	for _, v := range set {
		if f := g.vertexFreq[v]; f > max {
			max = f
		}
	}
	return max
}

// MaxEdgeFreqWithin returns the highest edge frequency in the subgraph induced
// by the given vertex set; it underlies the tight bound's fe term. Returns 0
// when the induced subgraph has no edges.
func (g *Graph) MaxEdgeFreqWithin(set []event.ID) float64 {
	in := make(map[event.ID]bool, len(set))
	for _, v := range set {
		in[v] = true
	}
	max := 0.0
	for e, f := range g.edgeFreq {
		if in[e.From] && in[e.To] && f > max {
			max = f
		}
	}
	return max
}

// Dot renders the graph in Graphviz dot syntax with frequency labels; useful
// for debugging and documentation (mirrors the paper's Fig. 1e/1f).
func (g *Graph) Dot(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digraph %s {\n", name)
	for v := 0; v < g.n; v++ {
		fmt.Fprintf(&b, "  %q [label=\"%s\\n%.2f\"];\n", g.alphabet.Name(event.ID(v)), g.alphabet.Name(event.ID(v)), g.vertexFreq[v])
	}
	for _, e := range g.Edges() {
		fmt.Fprintf(&b, "  %q -> %q [label=\"%.2f\"];\n", g.alphabet.Name(e.From), g.alphabet.Name(e.To), g.edgeFreq[e])
	}
	b.WriteString("}\n")
	return b.String()
}
