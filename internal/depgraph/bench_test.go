package depgraph

import (
	"math/rand"
	"testing"

	"eventmatch/internal/event"
)

func benchLog(nEvents, nTraces, traceLen int) *event.Log {
	rng := rand.New(rand.NewSource(1))
	l := event.NewLog()
	for i := 0; i < nEvents; i++ {
		l.Alphabet.Intern(string(rune('A' + i)))
	}
	for i := 0; i < nTraces; i++ {
		tr := make(event.Trace, traceLen)
		for j := range tr {
			tr[j] = event.ID(rng.Intn(nEvents))
		}
		l.Append(tr)
	}
	return l
}

func BenchmarkBuild(b *testing.B) {
	l := benchLog(16, 3000, 12)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Build(l)
	}
}
