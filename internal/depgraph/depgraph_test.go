package depgraph

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"eventmatch/internal/event"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

// fig1L1 reconstructs the paper's L1 example log (Fig. 1): traces of the
// order-processing workflow with B,C concurrent between A and D.
func fig1L1() *event.Log {
	return event.FromStrings(
		"A B C D E", // Trace 1
		"A C B D F", // Trace 2
		"A B C D E",
		"A C B D F",
		"A B C D E",
	)
}

func TestBuildVertexFrequencies(t *testing.T) {
	l := fig1L1()
	g := Build(l)
	a := l.Alphabet
	for _, name := range []string{"A", "B", "C", "D"} {
		if f := g.VertexFreq(a.Lookup(name)); f != 1.0 {
			t.Errorf("f(%s) = %v, want 1.0", name, f)
		}
	}
	if f := g.VertexFreq(a.Lookup("E")); !approx(f, 0.6) {
		t.Errorf("f(E) = %v, want 0.6", f)
	}
	if f := g.VertexFreq(a.Lookup("F")); !approx(f, 0.4) {
		t.Errorf("f(F) = %v, want 0.4", f)
	}
}

func TestBuildEdgeFrequencies(t *testing.T) {
	l := fig1L1()
	g := Build(l)
	a := l.Alphabet
	A, B, C, D := a.Lookup("A"), a.Lookup("B"), a.Lookup("C"), a.Lookup("D")
	if f := g.EdgeFreq(A, B); !approx(f, 0.6) {
		t.Errorf("f(AB) = %v, want 0.6", f)
	}
	if f := g.EdgeFreq(A, C); !approx(f, 0.4) {
		t.Errorf("f(AC) = %v, want 0.4", f)
	}
	if f := g.EdgeFreq(B, C); !approx(f, 0.6) {
		t.Errorf("f(BC) = %v, want 0.6", f)
	}
	if f := g.EdgeFreq(C, B); !approx(f, 0.4) {
		t.Errorf("f(CB) = %v, want 0.4", f)
	}
	if f := g.EdgeFreq(C, D); !approx(f, 0.6) {
		t.Errorf("f(CD) = %v, want 0.6", f)
	}
	if f := g.EdgeFreq(B, D); !approx(f, 0.4) {
		t.Errorf("f(BD) = %v, want 0.4", f)
	}
	if g.HasEdge(D, A) {
		t.Error("edge DA should not exist")
	}
	if f := g.EdgeFreq(D, A); f != 0 {
		t.Errorf("absent edge frequency = %v, want 0", f)
	}
}

func TestRepeatedAdjacentPairCountsOnce(t *testing.T) {
	// A B appears twice in the single trace; frequency must still be 1.0,
	// per Definition 1 ("at least once").
	l := event.FromStrings("A B A B")
	g := Build(l)
	a := l.Alphabet
	if f := g.EdgeFreq(a.Lookup("A"), a.Lookup("B")); f != 1.0 {
		t.Errorf("f(AB) = %v, want 1.0", f)
	}
	if f := g.EdgeFreq(a.Lookup("B"), a.Lookup("A")); f != 1.0 {
		t.Errorf("f(BA) = %v, want 1.0", f)
	}
}

func TestSelfLoop(t *testing.T) {
	l := event.FromStrings("A A B")
	g := Build(l)
	a := l.Alphabet
	if f := g.EdgeFreq(a.Lookup("A"), a.Lookup("A")); f != 1.0 {
		t.Errorf("self-loop f(AA) = %v, want 1.0", f)
	}
}

func TestEmptyLog(t *testing.T) {
	g := Build(event.NewLog())
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Errorf("empty log graph: V=%d E=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestAdjacency(t *testing.T) {
	l := event.FromStrings("A B", "A C")
	g := Build(l)
	a := l.Alphabet
	A := a.Lookup("A")
	succ := g.Successors(A)
	if len(succ) != 2 {
		t.Fatalf("A successors = %v, want 2", succ)
	}
	if succ[0] > succ[1] {
		t.Error("successors must be sorted")
	}
	if preds := g.Predecessors(a.Lookup("B")); len(preds) != 1 || preds[0] != A {
		t.Errorf("B predecessors = %v, want [A]", preds)
	}
}

func TestEdgesSorted(t *testing.T) {
	l := event.FromStrings("C B A", "B A C")
	g := Build(l)
	edges := g.Edges()
	for i := 1; i < len(edges); i++ {
		a, b := edges[i-1], edges[i]
		if a.From > b.From || (a.From == b.From && a.To >= b.To) {
			t.Fatalf("edges not strictly sorted: %v before %v", a, b)
		}
	}
}

func TestMaxFreqHelpers(t *testing.T) {
	l := fig1L1()
	g := Build(l)
	a := l.Alphabet
	all := make([]event.ID, l.NumEvents())
	for i := range all {
		all[i] = event.ID(i)
	}
	if f := g.MaxVertexFreq(all); f != 1.0 {
		t.Errorf("MaxVertexFreq(all) = %v, want 1.0", f)
	}
	if f := g.MaxVertexFreq(nil); f != 0 {
		t.Errorf("MaxVertexFreq(nil) = %v, want 0", f)
	}
	ef := []event.ID{a.Lookup("E"), a.Lookup("F")}
	if f := g.MaxVertexFreq(ef); !approx(f, 0.6) {
		t.Errorf("MaxVertexFreq(E,F) = %v, want 0.6", f)
	}
	// Induced subgraph on {E, F} has no edges.
	if f := g.MaxEdgeFreqWithin(ef); f != 0 {
		t.Errorf("MaxEdgeFreqWithin(E,F) = %v, want 0", f)
	}
	bc := []event.ID{a.Lookup("B"), a.Lookup("C")}
	if f := g.MaxEdgeFreqWithin(bc); !approx(f, 0.6) {
		t.Errorf("MaxEdgeFreqWithin(B,C) = %v, want 0.6 (BC edge)", f)
	}
}

func TestDot(t *testing.T) {
	g := Build(event.FromStrings("A B"))
	dot := g.Dot("G")
	for _, frag := range []string{"digraph G", `"A" -> "B"`, "1.00"} {
		if !strings.Contains(dot, frag) {
			t.Errorf("Dot output missing %q:\n%s", frag, dot)
		}
	}
}

// Property: every edge frequency is at most the frequency of both endpoints,
// and all frequencies lie in [0, 1].
func TestEdgeFreqBoundedByVertexFreqProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := event.NewLog()
		n := 2 + rng.Intn(6)
		for i := 0; i < n; i++ {
			l.Alphabet.Intern(string(rune('A' + i)))
		}
		for i := 0; i < 1+rng.Intn(30); i++ {
			tr := make(event.Trace, 1+rng.Intn(12))
			for j := range tr {
				tr[j] = event.ID(rng.Intn(n))
			}
			l.Append(tr)
		}
		g := Build(l)
		for _, e := range g.Edges() {
			f := g.EdgeFreq(e.From, e.To)
			if f <= 0 || f > 1 {
				return false
			}
			if f > g.VertexFreq(e.From)+1e-12 || f > g.VertexFreq(e.To)+1e-12 {
				return false
			}
		}
		for v := 0; v < n; v++ {
			if f := g.VertexFreq(event.ID(v)); f < 0 || f > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: adjacency lists agree exactly with the edge map.
func TestAdjacencyConsistencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		l := event.NewLog()
		n := 2 + rng.Intn(5)
		for i := 0; i < n; i++ {
			l.Alphabet.Intern(string(rune('A' + i)))
		}
		for i := 0; i < 1+rng.Intn(20); i++ {
			tr := make(event.Trace, 1+rng.Intn(8))
			for j := range tr {
				tr[j] = event.ID(rng.Intn(n))
			}
			l.Append(tr)
		}
		g := Build(l)
		count := 0
		for v := 0; v < n; v++ {
			for _, u := range g.Successors(event.ID(v)) {
				if !g.HasEdge(event.ID(v), u) {
					return false
				}
				count++
			}
		}
		if count != g.NumEdges() {
			return false
		}
		count = 0
		for v := 0; v < n; v++ {
			for _, u := range g.Predecessors(event.ID(v)) {
				if !g.HasEdge(u, event.ID(v)) {
					return false
				}
				count++
			}
		}
		return count == g.NumEdges()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAlphabetAccessor(t *testing.T) {
	l := event.FromStrings("A B")
	g := Build(l)
	if g.Alphabet() != l.Alphabet {
		t.Error("Alphabet() must return the log's alphabet")
	}
}
