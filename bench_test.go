// Benchmarks regenerating the paper's tables and figures. Each Benchmark
// runs a reduced-scale slice of the corresponding experiment (the cmd/
// experiments binary runs paper scale) and reports the headline quantities
// as custom metrics: F for accuracy, mappings/op for the search effort of
// Figs 7c-10c.
package eventmatch_test

import (
	"testing"
	"time"

	"eventmatch"
	"eventmatch/internal/experiments"
	"eventmatch/internal/gen"
	"eventmatch/internal/match"
	"eventmatch/internal/metrics"
	"eventmatch/internal/pattern"
)

// benchConfig is the reduced scale used by all experiment benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{
		Seed:        7,
		Traces:      800,
		SynthTraces: 600,
		ExactBudget: 30 * time.Second,
		Runs:        10,
	}
}

// BenchmarkTable3Characteristics regenerates Table 3.
func BenchmarkTable3Characteristics(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		rows := experiments.Table3(cfg)
		if len(rows) != 3 {
			b.Fatal("table 3 incomplete")
		}
	}
}

// benchProblem builds the full real-like pattern problem at a given size.
func benchProblem(b *testing.B, k int) (*match.Problem, *gen.Generated) {
	b.Helper()
	g := gen.RealLike(7, 800)
	pg, err := g.ProjectEvents(k)
	if err != nil {
		b.Fatal(err)
	}
	ps := make([]*pattern.Pattern, 0, len(pg.Patterns))
	for _, src := range pg.Patterns {
		p, err := pattern.ParseBind(src, pg.L1.Alphabet)
		if err != nil {
			b.Fatal(err)
		}
		ps = append(ps, p)
	}
	pr, err := match.BuildProblem(pg.L1, pg.L2, ps, match.ModePattern)
	if err != nil {
		b.Fatal(err)
	}
	return pr, pg
}

// BenchmarkFig7ExactPatternTight runs the Fig. 7 headline series point
// (Pattern-Tight at the full event set).
func BenchmarkFig7ExactPatternTight(b *testing.B) {
	pr, pg := benchProblem(b, 11)
	var f float64
	var generated int
	for i := 0; i < b.N; i++ {
		m, st, err := pr.AStar(match.Options{Bound: match.BoundTight})
		if err != nil {
			b.Fatal(err)
		}
		f = metrics.Evaluate(m, pg.Truth).FMeasure
		generated = st.Generated
	}
	b.ReportMetric(f, "F")
	b.ReportMetric(float64(generated), "mappings/op")
}

// BenchmarkFig7ExactPatternSimple is the same point with the §3.3 bound —
// together with the tight variant it reproduces the Fig. 7c pruning gap.
func BenchmarkFig7ExactPatternSimple(b *testing.B) {
	pr, pg := benchProblem(b, 11)
	var f float64
	var generated int
	for i := 0; i < b.N; i++ {
		m, st, err := pr.AStar(match.Options{Bound: match.BoundSimple})
		if err != nil {
			b.Fatal(err)
		}
		f = metrics.Evaluate(m, pg.Truth).FMeasure
		generated = st.Generated
	}
	b.ReportMetric(f, "F")
	b.ReportMetric(float64(generated), "mappings/op")
}

// BenchmarkFig7ExactVertexEdge is the Kang–Naughton comparison point.
func BenchmarkFig7ExactVertexEdge(b *testing.B) {
	g := gen.RealLike(7, 800)
	pr, err := match.BuildProblem(g.L1, g.L2, nil, match.ModeVertexEdge)
	if err != nil {
		b.Fatal(err)
	}
	var f float64
	for i := 0; i < b.N; i++ {
		m, _, err := pr.AStar(match.Options{Bound: match.BoundTight})
		if err != nil {
			b.Fatal(err)
		}
		f = metrics.Evaluate(m, g.Truth).FMeasure
	}
	b.ReportMetric(f, "F")
}

// BenchmarkFig8ExactOverTraces reproduces a Fig. 8 point: the full pattern
// matcher at a reduced trace count.
func BenchmarkFig8ExactOverTraces(b *testing.B) {
	g := gen.RealLike(7, 800)
	head := &gen.Generated{L1: g.L1.Head(400), L2: g.L2.Head(400), Truth: g.Truth, Patterns: g.Patterns}
	ps := make([]*pattern.Pattern, 0, len(head.Patterns))
	for _, src := range head.Patterns {
		p, err := pattern.ParseBind(src, head.L1.Alphabet)
		if err != nil {
			b.Fatal(err)
		}
		ps = append(ps, p)
	}
	pr, err := match.BuildProblem(head.L1, head.L2, ps, match.ModePattern)
	if err != nil {
		b.Fatal(err)
	}
	var f float64
	for i := 0; i < b.N; i++ {
		m, _, err := pr.AStar(match.Options{Bound: match.BoundTight})
		if err != nil {
			b.Fatal(err)
		}
		f = metrics.Evaluate(m, head.Truth).FMeasure
	}
	b.ReportMetric(f, "F")
}

// BenchmarkFig9HeuristicAdvanced reproduces the Fig. 9 headline point.
func BenchmarkFig9HeuristicAdvanced(b *testing.B) {
	pr, pg := benchProblem(b, 11)
	var f float64
	var generated int
	for i := 0; i < b.N; i++ {
		m, st, err := pr.HeuristicAdvanced(match.Options{Bound: match.BoundSimple})
		if err != nil {
			b.Fatal(err)
		}
		f = metrics.Evaluate(m, pg.Truth).FMeasure
		generated = st.Generated
	}
	b.ReportMetric(f, "F")
	b.ReportMetric(float64(generated), "mappings/op")
}

// BenchmarkFig9HeuristicSimple is the greedy comparison point.
func BenchmarkFig9HeuristicSimple(b *testing.B) {
	pr, pg := benchProblem(b, 11)
	var f float64
	var generated int
	for i := 0; i < b.N; i++ {
		m, st, err := pr.GreedyExpand(match.Options{Bound: match.BoundSimple})
		if err != nil {
			b.Fatal(err)
		}
		f = metrics.Evaluate(m, pg.Truth).FMeasure
		generated = st.Generated
	}
	b.ReportMetric(f, "F")
	b.ReportMetric(float64(generated), "mappings/op")
}

// BenchmarkFig10HeuristicOverTraces reproduces a Fig. 10 point.
func BenchmarkFig10HeuristicOverTraces(b *testing.B) {
	g := gen.RealLike(7, 800)
	for _, n := range []int{200, 800} {
		n := n
		b.Run(trace(n), func(b *testing.B) {
			head := &gen.Generated{L1: g.L1.Head(n), L2: g.L2.Head(n), Truth: g.Truth, Patterns: g.Patterns}
			ps := make([]*pattern.Pattern, 0, len(head.Patterns))
			for _, src := range head.Patterns {
				p, err := pattern.ParseBind(src, head.L1.Alphabet)
				if err != nil {
					b.Fatal(err)
				}
				ps = append(ps, p)
			}
			pr, err := match.BuildProblem(head.L1, head.L2, ps, match.ModePattern)
			if err != nil {
				b.Fatal(err)
			}
			var f float64
			for i := 0; i < b.N; i++ {
				m, _, err := pr.HeuristicAdvanced(match.Options{Bound: match.BoundSimple})
				if err != nil {
					b.Fatal(err)
				}
				f = metrics.Evaluate(m, head.Truth).FMeasure
			}
			b.ReportMetric(f, "F")
		})
	}
}

func trace(n int) string {
	switch n {
	case 200:
		return "traces=200"
	default:
		return "traces=800"
	}
}

// BenchmarkFig12LargeSynthetic reproduces Fig. 12 points: the advanced
// heuristic on 20- and 50-event synthetic logs where exact search is already
// infeasible at paper scale.
func BenchmarkFig12LargeSynthetic(b *testing.B) {
	for _, blocks := range []int{2, 5} {
		blocks := blocks
		name := "events=20"
		if blocks == 5 {
			name = "events=50"
		}
		b.Run(name, func(b *testing.B) {
			g := gen.LargeSynthetic(107, blocks, 600)
			ps := make([]*pattern.Pattern, 0, len(g.Patterns))
			for _, src := range g.Patterns {
				p, err := pattern.ParseBind(src, g.L1.Alphabet)
				if err != nil {
					b.Fatal(err)
				}
				ps = append(ps, p)
			}
			pr, err := match.BuildProblem(g.L1, g.L2, ps, match.ModePattern)
			if err != nil {
				b.Fatal(err)
			}
			var f float64
			for i := 0; i < b.N; i++ {
				m, _, err := pr.HeuristicAdvanced(match.Options{Bound: match.BoundSimple})
				if err != nil {
					b.Fatal(err)
				}
				f = metrics.Evaluate(m, g.Truth).FMeasure
			}
			b.ReportMetric(f, "F")
		})
	}
}

// BenchmarkTable4RandomLogs reproduces the Table 4 loop at reduced runs.
func BenchmarkTable4RandomLogs(b *testing.B) {
	cfg := benchConfig()
	cfg.Runs = 5
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkAblationBoundPruning reports the simple-vs-tight pruning ratio
// (the DESIGN.md bounding ablation, the paper's "up to two orders of
// magnitude" claim at scale).
func BenchmarkAblationBoundPruning(b *testing.B) {
	pr, _ := benchProblem(b, 11)
	var simple, tight, sharp int
	for i := 0; i < b.N; i++ {
		_, st1, err := pr.AStar(match.Options{Bound: match.BoundSimple})
		if err != nil {
			b.Fatal(err)
		}
		_, st2, err := pr.AStar(match.Options{Bound: match.BoundTight})
		if err != nil {
			b.Fatal(err)
		}
		_, st3, err := pr.AStar(match.Options{Bound: match.BoundSharp})
		if err != nil {
			b.Fatal(err)
		}
		simple, tight, sharp = st1.Generated, st2.Generated, st3.Generated
	}
	b.ReportMetric(float64(simple), "simple-mappings/op")
	b.ReportMetric(float64(tight), "tight-mappings/op")
	b.ReportMetric(float64(sharp), "sharp-mappings/op")
}

// BenchmarkAblationHeuristicPhases compares the full advanced heuristic with
// the bare Algorithm 3 (no anchoring, no repair).
func BenchmarkAblationHeuristicPhases(b *testing.B) {
	pr, pg := benchProblem(b, 11)
	var fullF, bareF float64
	for i := 0; i < b.N; i++ {
		m1, _, err := pr.HeuristicAdvanced(match.Options{Bound: match.BoundSimple})
		if err != nil {
			b.Fatal(err)
		}
		m2, _, err := pr.HeuristicAdvanced(match.Options{Bound: match.BoundSimple, NoSeed: true, NoRepair: true})
		if err != nil {
			b.Fatal(err)
		}
		fullF = metrics.Evaluate(m1, pg.Truth).FMeasure
		bareF = metrics.Evaluate(m2, pg.Truth).FMeasure
	}
	b.ReportMetric(fullF, "full-F")
	b.ReportMetric(bareF, "bare-F")
}

// BenchmarkAblationTraceIndex measures the It-index speedup for frequency
// counting (§3.2.3).
func BenchmarkAblationTraceIndex(b *testing.B) {
	g := gen.RealLike(7, 800)
	p, err := pattern.ParseBind(g.Patterns[1], g.L1.Alphabet)
	if err != nil {
		b.Fatal(err)
	}
	ix := pattern.NewTraceIndex(g.L1)
	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			p.Frequency(g.L1)
		}
	})
	b.Run("indexed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ix.Frequency(p)
		}
	})
}

// BenchmarkPublicMatch exercises the public API end to end.
func BenchmarkPublicMatch(b *testing.B) {
	g := gen.RealLike(7, 400)
	for i := 0; i < b.N; i++ {
		if _, err := eventmatch.Match(g.L1, g.L2, eventmatch.Config{Patterns: g.Patterns}); err != nil {
			b.Fatal(err)
		}
	}
}
