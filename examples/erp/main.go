// ERP integration: the paper's motivating scenario. Two departments of a
// manufacturer run the same order-processing workflow with independently
// encoded event names and slightly different working habits. This example
// generates both departments' logs, runs every matching algorithm, and
// compares each result against the known ground truth — a miniature of the
// paper's Figure 9 experiment.
//
// Run with:
//
//	go run ./examples/erp
package main

import (
	"fmt"
	"log"
	"time"

	"eventmatch"
	"eventmatch/internal/event"
	"eventmatch/internal/gen"
)

func main() {
	workload := gen.RealLike(7, 3000)
	fmt.Printf("department 1: %d traces over %d activities\n", workload.L1.NumTraces(), workload.L1.NumEvents())
	fmt.Printf("department 2: %d traces over %d activities (opaque codes)\n\n", workload.L2.NumTraces(), workload.L2.NumEvents())

	fmt.Println("declared patterns over department 1:")
	for _, p := range workload.Patterns {
		f, err := eventmatch.PatternFrequency(p, workload.L1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-55s f = %.2f\n", p, f)
	}
	fmt.Println()

	algorithms := []eventmatch.Algorithm{
		eventmatch.AlgoExact,
		eventmatch.AlgoHeuristicAdvanced,
		eventmatch.AlgoHeuristicSimple,
		eventmatch.AlgoVertexEdge,
		eventmatch.AlgoVertex,
		eventmatch.AlgoIterative,
		eventmatch.AlgoEntropy,
	}
	fmt.Printf("%-20s %10s %10s %12s\n", "algorithm", "F-measure", "score", "time")
	for _, a := range algorithms {
		res, err := eventmatch.Match(workload.L1, workload.L2, eventmatch.Config{
			Algorithm:   a,
			Patterns:    workload.Patterns,
			MaxDuration: 2 * time.Minute,
		})
		if err != nil {
			fmt.Printf("%-20s %10s\n", a, "DNF")
			continue
		}
		q := eventmatch.Evaluate(res.Mapping, workload.Truth)
		fmt.Printf("%-20s %10.3f %10.3f %12v\n", a, q.FMeasure, res.Score, res.Stats.Elapsed)
	}

	fmt.Println("\nbest mapping (heuristic-advanced) vs ground truth:")
	res, err := eventmatch.Match(workload.L1, workload.L2, eventmatch.Config{Patterns: workload.Patterns})
	if err != nil {
		log.Fatal(err)
	}
	for v1 := 0; v1 < workload.L1.NumEvents(); v1++ {
		name := workload.L1.Alphabet.Name(event.ID(v1))
		got := res.Pairs[name]
		want := workload.L2.Alphabet.Name(workload.Truth[v1])
		mark := "ok"
		if got != want {
			mark = "WRONG (truth: " + want + ")"
		}
		fmt.Printf("  %-16s -> %-6s %s\n", name, got, mark)
	}
}
