// Quickstart: match two tiny heterogeneous event logs with one declared
// pattern and print the discovered correspondence.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"

	"eventmatch"
)

func main() {
	// Department 1 logs its order process with English activity names.
	dept1 := eventmatch.LogFromStrings(
		"Receive Pay Check Produce Ship",
		"Receive Check Pay Produce Ship",
		"Receive Pay Check Produce Ship",
		"Receive Check Pay Produce Ship",
		"Receive Pay Check Produce Ship",
	)
	// Department 2 logs the same process with opaque codes (and an extra
	// archival step "GD" department 1 doesn't have).
	dept2 := eventmatch.LogFromStrings(
		"SD FK KC SC FH GD",
		"SD KC FK SC FH GD",
		"SD FK KC SC FH GD",
		"SD KC FK SC FH GD",
		"SD FK KC SC FH GD",
	)

	// One domain pattern: payment and inventory check run concurrently
	// between receiving and production.
	res, err := eventmatch.Match(dept1, dept2, eventmatch.Config{
		Patterns: []string{"SEQ(Receive,AND(Pay,Check),Produce)"},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("discovered event correspondence:")
	names := make([]string, 0, len(res.Pairs))
	for n := range res.Pairs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  %-8s -> %s\n", n, res.Pairs[n])
	}
	fmt.Printf("pattern normal distance: %.3f\n", res.Score)
}
