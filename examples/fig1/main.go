// Fig. 1 walkthrough: the paper's running example, end to end. Builds the
// two logs of Figure 1, prints their dependency graphs, shows why vertex and
// edge frequencies alone mislead the matcher (Example 3), and how the
// pattern p1 = SEQ(A,AND(B,C),D) recovers the true mapping (Example 4).
//
// Run with:
//
//	go run ./examples/fig1
package main

import (
	"fmt"
	"log"

	"eventmatch"
	"eventmatch/internal/depgraph"
	"eventmatch/internal/gen"
)

func main() {
	workload := gen.Fig1()
	l1, l2 := workload.L1, workload.L2

	fmt.Println("L1 traces:")
	for _, t := range l1.Traces[:2] {
		fmt.Println(" ", t.String(l1.Alphabet))
	}
	fmt.Println("L2 traces:")
	for _, t := range l2.Traces[:2] {
		fmt.Println(" ", t.String(l2.Alphabet))
	}

	g1 := depgraph.Build(l1)
	g2 := depgraph.Build(l2)
	fmt.Printf("\nG1: %d vertices, %d edges\nG2: %d vertices, %d edges\n",
		g1.NumVertices(), g1.NumEdges(), g2.NumVertices(), g2.NumEdges())
	fmt.Println("\nG1 in Graphviz form (paste into dot):")
	fmt.Print(g1.Dot("G1"))

	// Example 2: the pattern has frequency 1.0 in both logs under the truth.
	p1 := workload.Patterns[0]
	f1, err := eventmatch.PatternFrequency(p1, l1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npattern p1 = %s, f1(p1) = %.2f\n", p1, f1)

	// Vertex+edge matching alone vs pattern matching (Examples 3 and 4).
	ve, err := eventmatch.Match(l1, l2, eventmatch.Config{Algorithm: eventmatch.AlgoVertexEdge})
	if err != nil {
		log.Fatal(err)
	}
	pat, err := eventmatch.Match(l1, l2, eventmatch.Config{
		Algorithm: eventmatch.AlgoExact,
		Patterns:  []string{p1},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nvertex+edge mapping:   ", ve.Pairs)
	fmt.Println("pattern-based mapping: ", pat.Pairs)
	fmt.Printf("\naccuracy vs the true mapping {A->3 ... F->8}:\n")
	fmt.Printf("  vertex+edge: F = %.3f\n", eventmatch.Evaluate(ve.Mapping, workload.Truth).FMeasure)
	fmt.Printf("  pattern:     F = %.3f\n", eventmatch.Evaluate(pat.Mapping, workload.Truth).FMeasure)
}
