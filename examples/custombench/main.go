// Custom benchmark: build your own heterogeneous-log benchmark from a
// composable process model, watch pattern instances stream by, and match
// the two departments' logs.
//
// Run with:
//
//	go run ./examples/custombench
package main

import (
	"fmt"
	"log"

	"eventmatch"
	"eventmatch/internal/process"
	"eventmatch/internal/stream"
)

func main() {
	// An insurance-claim process: intake, a triage choice, parallel
	// assessment, an optional fraud review loop, settlement.
	model, err := process.NewModel(process.Seq{
		process.Activity("FileClaim"),
		process.Choice{
			{Weight: 0.7, Node: process.Activity("FastTrack")},
			{Weight: 0.3, Node: process.Activity("FullReview")},
		},
		process.Parallel{
			process.Activity("AssessDamage"),
			process.Activity("VerifyPolicy"),
		},
		process.Optional{P: 0.25, Node: process.Loop{
			Again: 0.3, MaxExtra: 2, Node: process.Activity("FraudCheck"),
		}},
		process.Activity("Settle"),
	})
	if err != nil {
		log.Fatal(err)
	}

	codes := map[string]string{
		"FileClaim": "LA", "FastTrack": "KS", "FullReview": "QS",
		"AssessDamage": "DP", "VerifyPolicy": "BD", "FraudCheck": "FQ", "Settle": "JS",
	}
	patterns := []string{"SEQ(AND(AssessDamage,VerifyPolicy),Settle)"}

	// Branch 1 strongly prefers assessing damage before verifying the
	// policy (OrderBias 0.8).
	l1 := model.Simulate(1, 2000, process.Params{OrderBias: 0.8, SwapNoise: 0.02})

	// Watch the discriminative pattern stream by in branch 1.
	bound, err := eventmatch.BindPatterns(patterns, l1.Alphabet)
	if err != nil {
		log.Fatal(err)
	}
	det, err := stream.NewDetector(bound)
	if err != nil {
		log.Fatal(err)
	}
	freq := det.Frequencies(l1)
	fmt.Printf("pattern %s occurs in %.0f%% of branch-1 claims\n", patterns[0], 100*freq[0])

	// Scenario A: branch 2 shares branch 1's ordering habits (bias 0.4,
	// same ranking) — order statistics identify every activity.
	runScenario(l1, model, codes, patterns, 0.4,
		"\nscenario A — branches share ordering habits:")

	// Scenario B: branch 2 verifies the policy before assessing damage
	// (bias -0.4, ranking inverted). The AND pattern is order-symmetric, so
	// nothing distinguishes the two parallel activities any more — the
	// matcher necessarily swaps them. This is the paper's own limit case:
	// patterns discriminate groups, not members of a symmetric group.
	runScenario(l1, model, codes, patterns, -0.4,
		"\nscenario B — branch 2 inverts the parallel order (expect the pair to swap):")
}

func runScenario(l1 *eventmatch.Log, model *process.Model, codes map[string]string, patterns []string, bias float64, header string) {
	raw2 := model.Simulate(2, 2000, process.Params{OrderBias: bias, SwapNoise: 0.05})
	l2 := eventmatch.LogFromStrings()
	for _, t := range raw2.Traces {
		names := make([]string, len(t))
		for i, e := range t {
			names[i] = codes[raw2.Alphabet.Name(e)]
		}
		l2.AppendNames(names...)
	}
	res, err := eventmatch.Match(l1, l2, eventmatch.Config{Patterns: patterns})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(header)
	correct := 0
	for _, name := range model.Activities() {
		code := res.Pairs[name]
		mark := ""
		if codes[name] == code {
			correct++
		} else {
			mark = "   <- wrong, truth " + codes[name]
		}
		fmt.Printf("  %-14s -> %s%s\n", name, code, mark)
	}
	fmt.Printf("%d/%d correct\n", correct, len(res.Pairs))
}
