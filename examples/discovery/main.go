// Pattern discovery: when no analyst-declared patterns are available, mine
// them from the source log first (the paper's §2.2 "patterns discovered from
// data" pathway) and match with the mined set.
//
// Run with:
//
//	go run ./examples/discovery
package main

import (
	"fmt"
	"log"

	"eventmatch"
	"eventmatch/internal/discovery"
	"eventmatch/internal/gen"
)

func main() {
	workload := gen.RealLike(7, 2000)

	mined, err := discovery.Discover(workload.L1, discovery.Options{
		MinSupport:  0.35,
		MaxLen:      4,
		MaxPatterns: 6,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mined %d patterns from department 1:\n", len(mined))
	patterns := make([]string, 0, len(mined))
	for _, p := range mined {
		src := p.String(workload.L1.Alphabet)
		patterns = append(patterns, src)
		fmt.Printf("  %-60s f = %.2f  orders = %d\n", src, p.Frequency(workload.L1), p.Orders())
	}

	// Match with mined patterns vs. with no complex patterns at all.
	withMined, err := eventmatch.Match(workload.L1, workload.L2, eventmatch.Config{Patterns: patterns})
	if err != nil {
		log.Fatal(err)
	}
	without, err := eventmatch.Match(workload.L1, workload.L2, eventmatch.Config{Algorithm: eventmatch.AlgoVertexEdge})
	if err != nil {
		log.Fatal(err)
	}

	qMined := eventmatch.Evaluate(withMined.Mapping, workload.Truth)
	qPlain := eventmatch.Evaluate(without.Mapping, workload.Truth)
	fmt.Printf("\nmatching accuracy:\n")
	fmt.Printf("  with mined patterns:   F = %.3f\n", qMined.FMeasure)
	fmt.Printf("  vertex+edge only:      F = %.3f\n", qPlain.FMeasure)
}
