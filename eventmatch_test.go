package eventmatch

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"eventmatch/internal/gen"
)

// demoLogs returns two small renamed logs with known correspondence.
func demoLogs() (*Log, *Log) {
	l1 := LogFromStrings(
		"Receive Pay Check Ship",
		"Receive Check Pay Ship",
		"Receive Pay Check Ship",
	)
	l2 := LogFromStrings(
		"SD FK KC FH",
		"SD KC FK FH",
		"SD FK KC FH",
	)
	return l1, l2
}

func TestMatchDefaultAlgorithm(t *testing.T) {
	l1, l2 := demoLogs()
	res, err := Match(l1, l2, Config{Patterns: []string{"SEQ(Receive,AND(Pay,Check),Ship)"}})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != 4 {
		t.Fatalf("pairs = %v", res.Pairs)
	}
	want := map[string]string{"Receive": "SD", "Pay": "FK", "Check": "KC", "Ship": "FH"}
	for k, v := range want {
		if res.Pairs[k] != v {
			t.Errorf("pair %s -> %s, want %s", k, res.Pairs[k], v)
		}
	}
	if res.Score <= 0 {
		t.Errorf("score = %v", res.Score)
	}
}

func TestMatchAllAlgorithmsProduceMappings(t *testing.T) {
	l1, l2 := demoLogs()
	for a := AlgoHeuristicAdvanced; a <= AlgoEntropy; a++ {
		res, err := Match(l1, l2, Config{Algorithm: a, Patterns: []string{"SEQ(Receive,AND(Pay,Check),Ship)"}})
		if err != nil {
			t.Fatalf("%v: %v", a, err)
		}
		if len(res.Pairs) != 4 {
			t.Errorf("%v: pairs = %v", a, res.Pairs)
		}
	}
}

func TestMatchExactOptimal(t *testing.T) {
	l1, l2 := demoLogs()
	exact, err := Match(l1, l2, Config{Algorithm: AlgoExact, Patterns: []string{"SEQ(Receive,AND(Pay,Check),Ship)"}})
	if err != nil {
		t.Fatal(err)
	}
	adv, err := Match(l1, l2, Config{Algorithm: AlgoHeuristicAdvanced, Patterns: []string{"SEQ(Receive,AND(Pay,Check),Ship)"}})
	if err != nil {
		t.Fatal(err)
	}
	if adv.Score > exact.Score+1e-9 {
		t.Errorf("heuristic score %v exceeds exact optimum %v", adv.Score, exact.Score)
	}
}

func TestMatchErrors(t *testing.T) {
	l1, l2 := demoLogs()
	if _, err := Match(nil, l2, Config{}); err == nil {
		t.Error("nil l1 must fail")
	}
	if _, err := Match(l1, nil, Config{}); err == nil {
		t.Error("nil l2 must fail")
	}
	if _, err := Match(l1, l2, Config{Patterns: []string{"SEQ("}}); err == nil {
		t.Error("bad pattern must fail")
	}
	if _, err := Match(l1, l2, Config{Patterns: []string{"SEQ(Nope,Receive)"}}); err == nil {
		t.Error("unknown event in pattern must fail")
	}
	if _, err := Match(l1, l2, Config{Algorithm: Algorithm(99)}); err == nil {
		t.Error("unknown algorithm must fail")
	}
}

func TestMatchBudget(t *testing.T) {
	l1, l2 := demoLogs()
	res, err := Match(l1, l2, Config{Algorithm: AlgoExact, MaxDuration: time.Nanosecond})
	if err != nil {
		t.Fatalf("budgeted match must return best-so-far, got error: %v", err)
	}
	if !res.Stats.Truncated {
		t.Error("nanosecond budget must truncate")
	}
	if !res.Mapping.Complete() {
		t.Errorf("truncated result must still be a complete mapping: %v", res.Mapping)
	}
}

func TestAlgorithmStringRoundTrip(t *testing.T) {
	for a := AlgoHeuristicAdvanced; a <= AlgoEntropy; a++ {
		back, err := ParseAlgorithm(a.String())
		if err != nil || back != a {
			t.Errorf("round trip %v: %v %v", a, back, err)
		}
	}
	if _, err := ParseAlgorithm("nonsense"); err == nil {
		t.Error("unknown name must fail")
	}
	if got := Algorithm(99).String(); !strings.Contains(got, "99") {
		t.Errorf("unknown algorithm string = %q", got)
	}
}

func TestPatternFrequency(t *testing.T) {
	l1, _ := demoLogs()
	f, err := PatternFrequency("SEQ(Receive,AND(Pay,Check),Ship)", l1)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1.0 {
		t.Errorf("f = %v, want 1.0", f)
	}
	if _, err := PatternFrequency("garbage(", l1); err == nil {
		t.Error("bad pattern must fail")
	}
}

func TestEvaluateWrapper(t *testing.T) {
	m := Mapping{0, 1}
	q := Evaluate(m, m)
	if q.FMeasure != 1 {
		t.Errorf("q = %+v", q)
	}
}

func TestReadWriteLog(t *testing.T) {
	l1, _ := demoLogs()
	var buf bytes.Buffer
	if err := WriteLog(&buf, l1, "csv"); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLog(&buf, "csv")
	if err != nil {
		t.Fatal(err)
	}
	if back.NumTraces() != l1.NumTraces() {
		t.Errorf("traces = %d", back.NumTraces())
	}
}

func TestReadLogFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "demo.log")
	if err := os.WriteFile(path, []byte("A B C\nC B A\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := ReadLogFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if l.NumTraces() != 2 || l.NumEvents() != 3 {
		t.Errorf("log = %d traces %d events", l.NumTraces(), l.NumEvents())
	}
	if _, err := ReadLogFile(filepath.Join(dir, "missing.log")); err == nil {
		t.Error("missing file must fail")
	}
}

func TestBindPatterns(t *testing.T) {
	l1, _ := demoLogs()
	ps, err := BindPatterns([]string{"SEQ(Receive,Pay)", "AND(Pay,Check)"}, l1.Alphabet)
	if err != nil || len(ps) != 2 {
		t.Fatalf("ps=%v err=%v", ps, err)
	}
	if _, err := BindPatterns([]string{"SEQ(Receive,Zzz)"}, l1.Alphabet); err == nil {
		t.Error("unknown event must fail")
	}
}

func TestTranslateLog(t *testing.T) {
	l1, l2 := demoLogs()
	res, err := Match(l1, l2, Config{Patterns: []string{"SEQ(Receive,AND(Pay,Check),Ship)"}})
	if err != nil {
		t.Fatal(err)
	}
	translated, err := TranslateLog(l2, res.Mapping, l1)
	if err != nil {
		t.Fatal(err)
	}
	if translated.NumTraces() != l2.NumTraces() {
		t.Fatalf("traces = %d", translated.NumTraces())
	}
	// Every translated trace must now read in l1's vocabulary.
	for _, tr := range translated.Traces {
		for _, e := range tr {
			name := translated.Alphabet.Name(e)
			if l1.Alphabet.Lookup(name) == EventID(-1) {
				t.Fatalf("untranslated event %q", name)
			}
		}
	}
	// The merged log is queryable with L1 patterns across both sources.
	merged, err := MergeLogs(l1, translated)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumTraces() != l1.NumTraces()+l2.NumTraces() {
		t.Fatalf("merged traces = %d", merged.NumTraces())
	}
	f, err := PatternFrequency("SEQ(Receive,AND(Pay,Check),Ship)", merged)
	if err != nil {
		t.Fatal(err)
	}
	if f != 1.0 {
		t.Errorf("merged pattern frequency = %v, want 1.0", f)
	}
}

func TestTranslateLogKeepsUnmappedNames(t *testing.T) {
	l1 := LogFromStrings("A", "A")
	l2 := LogFromStrings("x y", "x y") // y has no source event
	m := Mapping{0}                    // A -> x
	translated, err := TranslateLog(l2, m, l1)
	if err != nil {
		t.Fatal(err)
	}
	got := translated.Traces[0].String(translated.Alphabet)
	if got != "<A y>" {
		t.Errorf("trace = %s, want <A y>", got)
	}
}

func TestTranslateLogErrors(t *testing.T) {
	l1 := LogFromStrings("A")
	l2 := LogFromStrings("x")
	if _, err := TranslateLog(nil, Mapping{0}, l1); err == nil {
		t.Error("nil l2 must fail")
	}
	if _, err := TranslateLog(l2, Mapping{9}, l1); err == nil {
		t.Error("out-of-range image must fail")
	}
	if _, err := TranslateLog(l2, Mapping{0, 0}, l1); err == nil {
		t.Error("non-injective mapping must fail")
	}
	if _, err := TranslateLog(l2, Mapping{0, 0}, nil); err == nil {
		t.Error("nil l1 must fail")
	}
}

func TestMergeLogsErrors(t *testing.T) {
	if _, err := MergeLogs(LogFromStrings("A"), nil); err == nil {
		t.Error("nil log must fail")
	}
	merged, err := MergeLogs()
	if err != nil || merged.NumTraces() != 0 {
		t.Errorf("empty merge: %v %v", merged, err)
	}
}

func TestMatchOneToN(t *testing.T) {
	l1 := LogFromStrings(
		"Receive Pay Ship",
		"Receive Pay Ship",
		"Receive Pay Ship",
		"Receive Pay Ship",
	)
	l2 := LogFromStrings(
		"SD CASH FH",
		"SD CARD FH",
		"SD CASH FH",
		"SD CARD FH",
	)
	res, err := MatchOneToN(l1, l2, Config{Patterns: []string{"SEQ(Receive,Pay,Ship)"}})
	if err != nil {
		t.Fatal(err)
	}
	pay := res.Sets["Pay"]
	if len(pay) != 2 {
		t.Fatalf("Pay images = %v, want 2", pay)
	}
	found := map[string]bool{}
	for _, n := range pay {
		found[n] = true
	}
	if !found["CASH"] || !found["CARD"] {
		t.Errorf("Pay -> %v, want CASH and CARD", pay)
	}
	if _, err := MatchOneToN(l1, l2, Config{Algorithm: AlgoVertex}); err == nil {
		t.Error("vertex baseline must reject 1-to-n")
	}
	if _, err := MatchOneToN(nil, l2, Config{}); err == nil {
		t.Error("nil log must fail")
	}
}

// Acceptance: the exact matcher under a 50ms wall-clock budget on a
// workload its search cannot close (30 events) returns a complete
// best-so-far mapping marked truncated, instead of failing.
func TestMatchExactAnytimeUnderBudget(t *testing.T) {
	g := gen.LargeSynthetic(7, 3, 300)
	res, err := Match(g.L1, g.L2, Config{
		Algorithm:   AlgoExact,
		Patterns:    g.Patterns,
		MaxDuration: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("budgeted exact match failed: %v", err)
	}
	if res == nil || res.Mapping == nil {
		t.Fatal("budgeted exact match returned no mapping")
	}
	if !res.Mapping.Complete() {
		t.Errorf("best-so-far mapping incomplete: %v", res.Mapping)
	}
	if !res.Stats.Truncated {
		// 50ms cannot close a 30-event exact search.
		t.Errorf("expected truncation, stats = %+v", res.Stats)
	}
	if res.Stats.StopReason == "" {
		t.Error("truncated result must name its stop reason")
	}
}

// On the paper's 11-event real-like workload the exact search with the sharp
// bound closes in well under 50ms, so a budgeted run there must finish
// untruncated and optimal — the budget only bites when genuinely needed.
func TestMatchExactRealLikeClosesUnderBudget(t *testing.T) {
	g := gen.RealLike(7, 800)
	res, err := Match(g.L1, g.L2, Config{
		Algorithm:   AlgoExact,
		Patterns:    g.Patterns,
		MaxDuration: 10 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Truncated {
		t.Errorf("real-like exact search should close within budget: %+v", res.Stats)
	}
	if !res.Mapping.Complete() {
		t.Errorf("mapping incomplete: %v", res.Mapping)
	}
}

// Acceptance: a canceled context stops any algorithm promptly with a
// best-so-far result.
func TestMatchContextCanceledStopsQuickly(t *testing.T) {
	g := gen.RealLike(7, 800)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, algo := range []Algorithm{
		AlgoExact, AlgoHeuristicSimple, AlgoHeuristicAdvanced,
		AlgoVertex, AlgoIterative, AlgoEntropy,
	} {
		start := time.Now()
		res, err := MatchContext(ctx, g.L1, g.L2, Config{Algorithm: algo, Patterns: g.Patterns})
		elapsed := time.Since(start)
		if err != nil {
			t.Errorf("%v: canceled match errored: %v", algo, err)
			continue
		}
		if !res.Stats.Truncated {
			t.Errorf("%v: canceled match not marked truncated: %+v", algo, res.Stats)
		}
		if elapsed > time.Second {
			t.Errorf("%v: canceled match ran %v", algo, elapsed)
		}
		if res.Mapping == nil {
			t.Errorf("%v: canceled match returned no mapping", algo)
		}
	}
}

func TestMatchMaxGeneratedTruncates(t *testing.T) {
	l1, l2 := demoLogs()
	res, err := Match(l1, l2, Config{Algorithm: AlgoExact, MaxGenerated: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Truncated || res.Stats.StopReason == "" {
		t.Errorf("stats = %+v, want truncation with reason", res.Stats)
	}
}

func TestReadLogWithReportLenient(t *testing.T) {
	in := "case,activity\nc1,A\nbadrow\nc1,B\n"
	l, rep, err := ReadLogWithReport(strings.NewReader(in), "csv", ReadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumTraces() != 1 || rep.SkippedRows != 1 {
		t.Errorf("traces=%d skipped=%d", l.NumTraces(), rep.SkippedRows)
	}
}

func TestReadLogFileReport(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.csv")
	if err := os.WriteFile(path, []byte("c1,A\nc1\nc1,B\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadLogFileReport(path, ReadOptions{}); err == nil {
		t.Error("strict read of corrupt file must fail")
	}
	l, rep, err := ReadLogFileReport(path, ReadOptions{Lenient: true})
	if err != nil {
		t.Fatal(err)
	}
	if l.NumTraces() != 1 || rep.SkippedRows != 1 {
		t.Errorf("traces=%d skipped=%d", l.NumTraces(), rep.SkippedRows)
	}
	if _, _, err := ReadLogFileReport(filepath.Join(dir, "missing.csv"), ReadOptions{}); err == nil {
		t.Error("missing file must fail")
	}
}
