// Command matchlint is the repository's multichecker: it runs the custom
// analyzers under internal/analysis over the given package patterns and
// reports every violated invariant.
//
// Usage:
//
//	go run ./cmd/matchlint ./...
//	go run ./cmd/matchlint -list
//
// Exit status: 0 when the tree is clean, 1 when any analyzer reported a
// finding, 2 on a load or internal error. Findings print one per line as
//
//	file:line:col: [analyzer] message
//
// and can be suppressed at intentional sites with a
// `//matchlint:ignore <analyzer> <reason>` comment on or above the line.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"eventmatch/internal/analysis"
	"eventmatch/internal/analysis/ctxpass"
	"eventmatch/internal/analysis/intmerge"
	"eventmatch/internal/analysis/kindswitch"
	"eventmatch/internal/analysis/mapiter"
	"eventmatch/internal/analysis/telemetrynil"
)

// analyzers is the full suite, one per machine-checked invariant.
var analyzers = []*analysis.Analyzer{
	ctxpass.Analyzer,
	intmerge.Analyzer,
	kindswitch.Analyzer,
	mapiter.Analyzer,
	telemetrynil.Analyzer,
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("matchlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: matchlint [-list] [packages]\n\n"+
			"Runs the repository's invariant analyzers over the given package\n"+
			"patterns (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run("", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "matchlint: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "matchlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
