// Command matchlint is the repository's multichecker: it runs the custom
// analyzers under internal/analysis over the given package patterns and
// reports every violated invariant.
//
// Usage:
//
//	go run ./cmd/matchlint ./...
//	go run ./cmd/matchlint -list
//
// Exit status: 0 when the tree is clean, 1 when any analyzer reported a
// finding, 2 on a load or internal error. Findings print one per line as
//
//	file:line:col: [analyzer] message
//
// and can be suppressed at intentional sites with a
// `//matchlint:ignore <analyzer> -- <reason>` comment on or above the line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"eventmatch/internal/analysis"
	"eventmatch/internal/analysis/condprotocol"
	"eventmatch/internal/analysis/ctxpass"
	"eventmatch/internal/analysis/fsyncorder"
	"eventmatch/internal/analysis/intmerge"
	"eventmatch/internal/analysis/kindswitch"
	"eventmatch/internal/analysis/lockheld"
	"eventmatch/internal/analysis/lockorder"
	"eventmatch/internal/analysis/mapiter"
	"eventmatch/internal/analysis/telemetrynil"
)

// analyzers is the full suite, one per machine-checked invariant.
var analyzers = []*analysis.Analyzer{
	condprotocol.Analyzer,
	ctxpass.Analyzer,
	fsyncorder.Analyzer,
	intmerge.Analyzer,
	kindswitch.Analyzer,
	lockheld.Analyzer,
	lockorder.Analyzer,
	mapiter.Analyzer,
	telemetrynil.Analyzer,
}

// jsonDiag is the -json wire form of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// emit writes the findings to stdout, one `file:line:col: [analyzer] message`
// line each, or as a JSON array when asJSON is set.
func emit(diags []analysis.Diagnostic, asJSON bool, stdout io.Writer) error {
	if !asJSON {
		for _, d := range diags {
			fmt.Fprintf(stdout, "%s\n", d)
		}
		return nil
	}
	out := make([]jsonDiag, 0, len(diags))
	for _, d := range diags {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	enc := json.NewEncoder(stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("matchlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list the analyzers and exit")
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array instead of text")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: matchlint [-list] [-json] [packages]\n\n"+
			"Runs the repository's invariant analyzers over the given package\n"+
			"patterns (default ./...).\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run("", patterns, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "matchlint: %v\n", err)
		return 2
	}
	if err := emit(diags, *jsonOut, stdout); err != nil {
		fmt.Fprintf(stderr, "matchlint: %v\n", err)
		return 2
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "matchlint: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
