package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	for _, name := range []string{"ctxpass", "intmerge", "kindswitch", "mapiter", "telemetrynil"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestRunCleanPackage(t *testing.T) {
	// The matching pipeline itself must stay matchlint-clean; one leaf package
	// keeps the test fast while still exercising load → analyze → report.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"eventmatch/internal/event"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(internal/event) = %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean package produced findings:\n%s", stdout.String())
	}
}

func TestRunServerPackageClean(t *testing.T) {
	// The serving layer must stay clean under the extended ctxpass check:
	// every handler threads r.Context() instead of minting a fresh context.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"eventmatch/internal/server", "eventmatch/internal/server/client"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(internal/server...) = %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("server packages produced findings:\n%s", stdout.String())
	}
}

func TestRunBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./does/not/exist"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(bad pattern) = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "matchlint:") {
		t.Errorf("error output missing matchlint prefix: %s", stderr.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(bad flag) = %d, want 2", code)
	}
}
