package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"strings"
	"testing"

	"eventmatch/internal/analysis"
)

func TestRunList(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-list) = %d, want 0 (stderr: %s)", code, stderr.String())
	}
	for _, name := range []string{
		"condprotocol", "ctxpass", "fsyncorder", "intmerge", "kindswitch",
		"lockheld", "lockorder", "mapiter", "telemetrynil",
	} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, stdout.String())
		}
	}
}

func TestRunCleanPackage(t *testing.T) {
	// The matching pipeline itself must stay matchlint-clean; one leaf package
	// keeps the test fast while still exercising load → analyze → report.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"eventmatch/internal/event"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(internal/event) = %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("clean package produced findings:\n%s", stdout.String())
	}
}

func TestRunServerPackageClean(t *testing.T) {
	// The serving layer must stay clean under the extended ctxpass check:
	// every handler threads r.Context() instead of minting a fresh context.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"eventmatch/internal/server", "eventmatch/internal/server/client"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(internal/server...) = %d, want 0\nstdout: %s\nstderr: %s",
			code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("server packages produced findings:\n%s", stdout.String())
	}
}

func TestRunJSONClean(t *testing.T) {
	// A clean package under -json must emit an empty array, not null — CI
	// consumers index into the result without nil checks.
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-json", "eventmatch/internal/event"}, &stdout, &stderr); code != 0 {
		t.Fatalf("run(-json) = %d, want 0\nstderr: %s", code, stderr.String())
	}
	if got := strings.TrimSpace(stdout.String()); got != "[]" {
		t.Errorf("clean -json output = %q, want []", got)
	}
}

func TestEmitJSON(t *testing.T) {
	diags := []analysis.Diagnostic{
		{
			Pos:      token.Position{Filename: "a/b.go", Line: 12, Column: 3},
			Analyzer: "lockheld",
			Message:  "call to os.WriteFile while holding s.mu",
		},
		{
			Pos:      token.Position{Filename: "c.go", Line: 7, Column: 1},
			Analyzer: "fsyncorder",
			Message:  "no SyncDir after this Rename",
		},
	}
	var buf bytes.Buffer
	if err := emit(diags, true, &buf); err != nil {
		t.Fatalf("emit: %v", err)
	}
	var got []jsonDiag
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("emit produced invalid JSON: %v\n%s", err, buf.String())
	}
	want := []jsonDiag{
		{File: "a/b.go", Line: 12, Col: 3, Analyzer: "lockheld", Message: "call to os.WriteFile while holding s.mu"},
		{File: "c.go", Line: 7, Col: 1, Analyzer: "fsyncorder", Message: "no SyncDir after this Rename"},
	}
	if len(got) != len(want) {
		t.Fatalf("emit returned %d diags, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("diag %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestRunBadPattern(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"./does/not/exist"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(bad pattern) = %d, want 2", code)
	}
	if !strings.Contains(stderr.String(), "matchlint:") {
		t.Errorf("error output missing matchlint prefix: %s", stderr.String())
	}
}

func TestRunBadFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-definitely-not-a-flag"}, &stdout, &stderr); code != 2 {
		t.Fatalf("run(bad flag) = %d, want 2", code)
	}
}
