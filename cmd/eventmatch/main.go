// Command eventmatch matches the event alphabets of two heterogeneous event
// logs and prints the discovered correspondence.
//
// Usage:
//
//	eventmatch [flags] LOG1 LOG2
//
// Log formats are detected from the file extension: .csv ("case,activity"
// rows), .xes/.xml (minimal XES), anything else as trace lines (one
// whitespace-separated trace per line, '#' comments).
//
// Flags:
//
//	-algorithm  exact | exact-simple | heuristic-simple | heuristic-advanced |
//	            vertex | vertex-edge | iterative | entropy
//	            (default heuristic-advanced)
//	-patterns   file of newline-separated complex patterns over LOG1's events,
//	            e.g. "SEQ(Receive,AND(Payment,Check),Ship)"
//	-timeout    search budget (default 60s; 0 = unlimited)
//	-max-frontier  beam-prune the exact search's frontier to this many nodes
//	            (0 = unbounded)
//	-workers    parallelize the search and its frequency scans across this
//	            many goroutines (default 0 = one per CPU; 1 = sequential);
//	            the result is identical for every value
//	-lenient    skip malformed log rows/events instead of failing; skips are
//	            reported on stderr
//	-stats      print search statistics
//	-dot FILE   write a Graphviz rendering of both dependency graphs with
//	            the discovered correspondence to FILE
//	-metrics-json FILE  write the run's telemetry snapshot (search effort,
//	            cache hits/misses, ingestion counters) to FILE as JSON
//	-pprof ADDR serve net/http/pprof and an expvar telemetry snapshot on
//	            ADDR (e.g. localhost:6060) for the duration of the run
//	-progress DUR  print a one-line telemetry summary to stderr every DUR
//	            (e.g. 2s) while the search runs
//
// The search is anytime: on timeout, frontier pruning, or an interrupt
// (SIGINT/SIGTERM) the best complete mapping found so far is still printed,
// marked truncated in the -stats line.
//
// Exit codes:
//
//	0  success, result proven under the requested semantics
//	1  error (unreadable input, bad flags value, internal failure)
//	2  usage error
//	3  truncated result: a budget, beam bound, or interrupt cut the search
//	   short (a best-so-far mapping was still printed), or a lenient read
//	   skipped malformed input
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers profiling handlers on DefaultServeMux for -pprof
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"
	"time"

	"eventmatch"
	"eventmatch/internal/depgraph"
	"eventmatch/internal/pattern"
	"eventmatch/internal/telemetry"
	"eventmatch/internal/viz"
)

// Exit codes; see the command comment.
const (
	exitOK        = 0
	exitError     = 1
	exitUsage     = 2
	exitTruncated = 3
)

// Guards applied to log ingestion in lenient mode.
const (
	lenientMaxTraceLen = 1_000_000
	lenientMaxLogBytes = 1 << 30
)

type cliOptions struct {
	algorithm    string
	patternsFile string
	timeout      time.Duration
	maxFrontier  int
	workers      int
	lenient      bool
	stats        bool
	dotFile      string
	metricsJSON  string
	pprofAddr    string
	progress     time.Duration
}

func main() {
	var o cliOptions
	flag.StringVar(&o.algorithm, "algorithm", "heuristic-advanced", "matching algorithm")
	flag.StringVar(&o.patternsFile, "patterns", "", "file of complex patterns over LOG1's events")
	flag.DurationVar(&o.timeout, "timeout", 60*time.Second, "search budget (0 = unlimited)")
	flag.IntVar(&o.maxFrontier, "max-frontier", 0, "beam-prune the exact frontier to this many nodes (0 = unbounded)")
	flag.IntVar(&o.workers, "workers", 0, "parallel search goroutines (0 = one per CPU, 1 = sequential)")
	flag.BoolVar(&o.lenient, "lenient", false, "skip malformed log rows/events instead of failing")
	flag.BoolVar(&o.stats, "stats", false, "print search statistics")
	flag.StringVar(&o.dotFile, "dot", "", "write a Graphviz mapping rendering to this file")
	flag.StringVar(&o.metricsJSON, "metrics-json", "", "write the run's telemetry snapshot to this file as JSON")
	flag.StringVar(&o.pprofAddr, "pprof", "", "serve net/http/pprof and expvar telemetry on this address (e.g. localhost:6060)")
	flag.DurationVar(&o.progress, "progress", 0, "print a telemetry summary line to stderr at this interval (0 = off)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: eventmatch [flags] LOG1 LOG2\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(exitUsage)
	}

	// An interrupt cancels the search; the anytime engine then returns its
	// best mapping so far, which is still printed before exiting.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	truncated, err := run(ctx, flag.Arg(0), flag.Arg(1), o)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eventmatch:", err)
	}
	os.Exit(exitCode(truncated, err))
}

// cliWorkers maps the flag convention (0 = one per CPU) to a concrete
// worker count (the library treats 0/1 as sequential).
func cliWorkers(flagValue int) int {
	if flagValue == 0 {
		return runtime.GOMAXPROCS(0)
	}
	return flagValue
}

// exitCode maps a run outcome to the documented exit codes.
func exitCode(truncated bool, err error) int {
	switch {
	case err != nil:
		return exitError
	case truncated:
		return exitTruncated
	default:
		return exitOK
	}
}

// run executes one match. truncated reports that the printed result is
// best-so-far (budget, beam bound, or interrupt) or that a lenient read
// skipped input.
func run(ctx context.Context, path1, path2 string, o cliOptions) (truncated bool, err error) {
	algo, err := eventmatch.ParseAlgorithm(o.algorithm)
	if err != nil {
		return false, err
	}

	// One registry serves every observability flag; with none of them set it
	// stays nil and the whole pipeline runs uninstrumented.
	var reg *eventmatch.TelemetryRegistry
	if o.metricsJSON != "" || o.pprofAddr != "" || o.progress > 0 {
		reg = eventmatch.NewTelemetry()
	}
	if o.metricsJSON != "" {
		// Written on every exit path so an interrupted (anytime) run still
		// leaves its effort counters behind.
		defer func() {
			if werr := writeMetricsJSON(reg, o.metricsJSON); werr != nil && err == nil {
				err = werr
			}
		}()
	}
	if o.pprofAddr != "" {
		if perr := reg.PublishExpvar("eventmatch"); perr != nil {
			return false, perr
		}
		go func() {
			if serr := http.ListenAndServe(o.pprofAddr, nil); serr != nil {
				fmt.Fprintln(os.Stderr, "eventmatch: pprof:", serr)
			}
		}()
	}
	prog := telemetry.NewProgress(reg, os.Stderr, o.progress)
	prog.Start()
	defer prog.Stop()

	l1, skipped1, err := readLog(path1, o, reg)
	if err != nil {
		return false, err
	}
	l2, skipped2, err := readLog(path2, o, reg)
	if err != nil {
		return false, err
	}
	truncated = skipped1 || skipped2
	l1.RegisterTelemetry(reg, "log1")
	l2.RegisterTelemetry(reg, "log2")

	var patterns []string
	if o.patternsFile != "" {
		data, err := os.ReadFile(o.patternsFile)
		if err != nil {
			return false, err
		}
		exprs, err := pattern.ParseAll(string(data))
		if err != nil {
			return false, fmt.Errorf("%s: %w", o.patternsFile, err)
		}
		for _, e := range exprs {
			patterns = append(patterns, e.String())
		}
	}

	res, err := eventmatch.MatchContext(ctx, l1, l2, eventmatch.Config{
		Algorithm:   algo,
		Patterns:    patterns,
		MaxDuration: o.timeout,
		MaxFrontier: o.maxFrontier,
		Workers:     cliWorkers(o.workers),
		Telemetry:   reg,
	})
	if err != nil {
		return false, err
	}
	if res.Stats.Truncated {
		truncated = true
		fmt.Fprintf(os.Stderr, "eventmatch: search stopped early (%s); printing best mapping found\n", res.Stats.StopReason)
	}

	names := make([]string, 0, len(res.Pairs))
	for n := range res.Pairs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%s -> %s\n", n, res.Pairs[n])
	}
	if o.stats {
		fmt.Printf("# algorithm=%s score=%.4f elapsed=%v expanded=%d generated=%d truncated=%v stop=%s\n",
			algo, res.Score, res.Stats.Elapsed, res.Stats.Expanded, res.Stats.Generated,
			res.Stats.Truncated, res.Stats.StopReason)
	}
	if o.dotFile != "" {
		dot := viz.MappingDot(depgraph.Build(l1), depgraph.Build(l2), res.Mapping)
		if err := os.WriteFile(o.dotFile, []byte(dot), 0o644); err != nil {
			return truncated, err
		}
	}
	return truncated, nil
}

// writeMetricsJSON dumps the registry's snapshot to path.
func writeMetricsJSON(reg *eventmatch.TelemetryRegistry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readLog loads one log, strictly by default, leniently (with skips reported
// on stderr) under -lenient. skipped reports whether anything was dropped.
func readLog(path string, o cliOptions, reg *eventmatch.TelemetryRegistry) (l *eventmatch.Log, skipped bool, err error) {
	ro := eventmatch.ReadOptions{Telemetry: reg}
	if o.lenient {
		ro.Lenient = true
		ro.MaxTraceLen = lenientMaxTraceLen
		ro.MaxLogBytes = lenientMaxLogBytes
		ro.Workers = cliWorkers(o.workers)
	}
	l, rep, err := eventmatch.ReadLogFileReport(path, ro)
	if err != nil {
		return nil, false, err
	}
	if rep.ErrorCount > 0 {
		fmt.Fprintf(os.Stderr, "eventmatch: %s: skipped %d rows, %d traces (%d problems)\n",
			path, rep.SkippedRows, rep.SkippedTraces, rep.ErrorCount)
		for _, pe := range rep.Errors {
			fmt.Fprintf(os.Stderr, "eventmatch: %s: %s\n", path, pe.Error())
		}
	}
	return l, rep.ErrorCount > 0, nil
}
