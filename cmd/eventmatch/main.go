// Command eventmatch matches the event alphabets of two heterogeneous event
// logs and prints the discovered correspondence.
//
// Usage:
//
//	eventmatch [flags] LOG1 LOG2
//
// Log formats are detected from the file extension: .csv ("case,activity"
// rows), .xes/.xml (minimal XES), anything else as trace lines (one
// whitespace-separated trace per line, '#' comments).
//
// Flags:
//
//	-algorithm  exact | exact-simple | heuristic-simple | heuristic-advanced |
//	            vertex | vertex-edge | iterative | entropy
//	            (default heuristic-advanced)
//	-patterns   file of newline-separated complex patterns over LOG1's events,
//	            e.g. "SEQ(Receive,AND(Payment,Check),Ship)"
//	-timeout    search budget (default 60s; 0 = unlimited)
//	-stats      print search statistics
//	-dot FILE   write a Graphviz rendering of both dependency graphs with
//	            the discovered correspondence to FILE
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"eventmatch"
	"eventmatch/internal/depgraph"
	"eventmatch/internal/pattern"
	"eventmatch/internal/viz"
)

func main() {
	algorithm := flag.String("algorithm", "heuristic-advanced", "matching algorithm")
	patternsFile := flag.String("patterns", "", "file of complex patterns over LOG1's events")
	timeout := flag.Duration("timeout", 60*time.Second, "search budget (0 = unlimited)")
	stats := flag.Bool("stats", false, "print search statistics")
	dotFile := flag.String("dot", "", "write a Graphviz mapping rendering to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: eventmatch [flags] LOG1 LOG2\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}

	if err := run(flag.Arg(0), flag.Arg(1), *algorithm, *patternsFile, *timeout, *stats, *dotFile); err != nil {
		fmt.Fprintln(os.Stderr, "eventmatch:", err)
		os.Exit(1)
	}
}

func run(path1, path2, algorithm, patternsFile string, timeout time.Duration, stats bool, dotFile string) error {
	algo, err := eventmatch.ParseAlgorithm(algorithm)
	if err != nil {
		return err
	}
	l1, err := eventmatch.ReadLogFile(path1)
	if err != nil {
		return err
	}
	l2, err := eventmatch.ReadLogFile(path2)
	if err != nil {
		return err
	}

	var patterns []string
	if patternsFile != "" {
		data, err := os.ReadFile(patternsFile)
		if err != nil {
			return err
		}
		exprs, err := pattern.ParseAll(string(data))
		if err != nil {
			return fmt.Errorf("%s: %w", patternsFile, err)
		}
		for _, e := range exprs {
			patterns = append(patterns, e.String())
		}
	}

	res, err := eventmatch.Match(l1, l2, eventmatch.Config{
		Algorithm:   algo,
		Patterns:    patterns,
		MaxDuration: timeout,
	})
	if err != nil {
		return err
	}

	names := make([]string, 0, len(res.Pairs))
	for n := range res.Pairs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%s -> %s\n", n, res.Pairs[n])
	}
	if stats {
		fmt.Printf("# algorithm=%s score=%.4f elapsed=%v expanded=%d generated=%d\n",
			algo, res.Score, res.Stats.Elapsed, res.Stats.Expanded, res.Stats.Generated)
	}
	if dotFile != "" {
		dot := viz.MappingDot(depgraph.Build(l1), depgraph.Build(l2), res.Mapping)
		if err := os.WriteFile(dotFile, []byte(dot), 0o644); err != nil {
			return err
		}
	}
	return nil
}
