package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"eventmatch"
	"eventmatch/internal/gen"
	"eventmatch/internal/telemetry"
)

// opts builds cliOptions with the historical defaults used by the tests.
func opts(algorithm, patternsFile string, stats bool, dotFile string) cliOptions {
	return cliOptions{
		algorithm:    algorithm,
		patternsFile: patternsFile,
		timeout:      time.Minute,
		stats:        stats,
		dotFile:      dotFile,
	}
}

func writeDemoLogs(t *testing.T) (string, string, string) {
	t.Helper()
	dir := t.TempDir()
	l1 := filepath.Join(dir, "l1.log")
	l2 := filepath.Join(dir, "l2.csv")
	pats := filepath.Join(dir, "patterns.txt")
	if err := os.WriteFile(l1, []byte("A B C\nA C B\nA B C\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	csv := "case,activity\nc1,x\nc1,y\nc1,z\nc2,x\nc2,z\nc2,y\nc3,x\nc3,y\nc3,z\n"
	if err := os.WriteFile(l2, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pats, []byte("# demo\nSEQ(A,AND(B,C))\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return l1, l2, pats
}

func TestRunMatchesLogs(t *testing.T) {
	l1, l2, pats := writeDemoLogs(t)
	truncated, err := run(context.Background(), l1, l2, opts("heuristic-advanced", pats, true, ""))
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("clean run must not report truncation")
	}
}

func TestRunWritesDot(t *testing.T) {
	l1, l2, _ := writeDemoLogs(t)
	dot := filepath.Join(t.TempDir(), "out.dot")
	if _, err := run(context.Background(), l1, l2, opts("vertex", "", false, dot)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph eventmatch") {
		t.Errorf("dot output malformed:\n%s", data)
	}
}

func TestRunErrors(t *testing.T) {
	l1, l2, _ := writeDemoLogs(t)
	ctx := context.Background()
	if _, err := run(ctx, l1, l2, opts("no-such-algorithm", "", false, "")); err == nil {
		t.Error("bad algorithm must fail")
	}
	if _, err := run(ctx, "/nonexistent", l2, opts("vertex", "", false, "")); err == nil {
		t.Error("missing log must fail")
	}
	if _, err := run(ctx, l1, l2, opts("vertex", "/nonexistent-patterns", false, "")); err == nil {
		t.Error("missing pattern file must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("SEQ(\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := run(ctx, l1, l2, opts("heuristic-advanced", bad, false, "")); err == nil {
		t.Error("malformed pattern file must fail")
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	l1, l2, pats := writeDemoLogs(t)
	for _, algo := range []string{
		"exact", "exact-simple", "heuristic-simple", "heuristic-advanced",
		"vertex", "vertex-edge", "iterative", "entropy",
	} {
		if _, err := run(context.Background(), l1, l2, opts(algo, pats, false, "")); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
}

func TestRunWithWorkers(t *testing.T) {
	l1, l2, pats := writeDemoLogs(t)
	for _, workers := range []int{0, 1, 8} { // 0 = one per CPU
		o := opts("heuristic-advanced", pats, false, "")
		o.workers = workers
		truncated, err := run(context.Background(), l1, l2, o)
		if err != nil {
			t.Errorf("workers=%d: %v", workers, err)
		}
		if truncated {
			t.Errorf("workers=%d: clean run must not report truncation", workers)
		}
	}
}

func TestCliWorkers(t *testing.T) {
	if got := cliWorkers(0); got < 1 {
		t.Errorf("cliWorkers(0) = %d, want >= 1 (one per CPU)", got)
	}
	if got := cliWorkers(1); got != 1 {
		t.Errorf("cliWorkers(1) = %d, want 1", got)
	}
	if got := cliWorkers(8); got != 8 {
		t.Errorf("cliWorkers(8) = %d, want 8", got)
	}
}

func TestRunCanceledContextStillPrintsBestSoFar(t *testing.T) {
	l1, l2, pats := writeDemoLogs(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // simulates SIGINT before the search starts
	truncated, err := run(ctx, l1, l2, opts("exact", pats, true, ""))
	if err != nil {
		t.Fatalf("canceled run must still succeed with best-so-far: %v", err)
	}
	if !truncated {
		t.Error("canceled run must report truncation")
	}
}

func TestRunTimeoutReportsTruncation(t *testing.T) {
	l1, l2, pats := writeDemoLogs(t)
	o := opts("exact", pats, false, "")
	o.timeout = time.Nanosecond
	truncated, err := run(context.Background(), l1, l2, o)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Error("nanosecond timeout must report truncation")
	}
}

func TestRunLenientSkipsCorruptRows(t *testing.T) {
	l1, l2, _ := writeDemoLogs(t)
	// Corrupt one row of the CSV log.
	data, err := os.ReadFile(l2)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := strings.Replace(string(data), "c2,z\n", "c2\n", 1)
	if err := os.WriteFile(l2, []byte(corrupt), 0o644); err != nil {
		t.Fatal(err)
	}
	// Strict mode fails outright.
	if _, err := run(context.Background(), l1, l2, opts("vertex", "", false, "")); err == nil {
		t.Error("strict run on corrupt log must fail")
	}
	// Lenient mode succeeds but reports the skip via the truncated flag.
	o := opts("vertex", "", false, "")
	o.lenient = true
	truncated, err := run(context.Background(), l1, l2, o)
	if err != nil {
		t.Fatal(err)
	}
	if !truncated {
		t.Error("lenient run with skips must report truncation")
	}
}

// writeFig1Logs materializes the paper's Figure 1 workload as CLI inputs.
func writeFig1Logs(t *testing.T) (string, string, string) {
	t.Helper()
	w := gen.Fig1()
	dir := t.TempDir()
	paths := [2]string{filepath.Join(dir, "dept1.log"), filepath.Join(dir, "dept2.log")}
	for i, l := range []*eventmatch.Log{w.L1, w.L2} {
		var b bytes.Buffer
		if err := eventmatch.WriteLog(&b, l, "log"); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(paths[i], b.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pats := filepath.Join(dir, "patterns.txt")
	if err := os.WriteFile(pats, []byte(strings.Join(w.Patterns, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return paths[0], paths[1], pats
}

// TestRunMetricsJSON is the observability acceptance path: the exact search
// on the Figure 1 example with -metrics-json must leave behind a snapshot
// with nonzero A* expansions and frequency-cache traffic.
func TestRunMetricsJSON(t *testing.T) {
	l1, l2, pats := writeFig1Logs(t)
	o := opts("exact", pats, false, "")
	o.metricsJSON = filepath.Join(t.TempDir(), "metrics.json")
	truncated, err := run(context.Background(), l1, l2, o)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("clean run must not report truncation")
	}
	data, err := os.ReadFile(o.metricsJSON)
	if err != nil {
		t.Fatal(err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics JSON malformed: %v\n%s", err, data)
	}
	for _, c := range []string{"astar.expanded", "astar.bound_evals", "logio.traces", "logio.bytes"} {
		if snap.Counter(c) <= 0 {
			t.Errorf("counter %s = %d, want > 0\n%s", c, snap.Counter(c), data)
		}
	}
	for _, g := range []string{"cache.hits", "cache.misses"} {
		if snap.Gauge(g) <= 0 {
			t.Errorf("gauge %s = %d, want > 0\n%s", g, snap.Gauge(g), data)
		}
	}
}

// TestRunProgressLines checks that -progress emits summary lines without
// disturbing the run.
func TestRunProgressLines(t *testing.T) {
	l1, l2, pats := writeDemoLogs(t)
	o := opts("heuristic-advanced", pats, false, "")
	o.progress = time.Millisecond
	truncated, err := run(context.Background(), l1, l2, o)
	if err != nil {
		t.Fatal(err)
	}
	if truncated {
		t.Error("clean run must not report truncation")
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		truncated bool
		err       error
		want      int
	}{
		{false, nil, exitOK},
		{true, nil, exitTruncated},
		{false, errors.New("x"), exitError},
		{true, errors.New("x"), exitError}, // an error outranks truncation
	}
	for _, tc := range cases {
		if got := exitCode(tc.truncated, tc.err); got != tc.want {
			t.Errorf("exitCode(%v, %v) = %d, want %d", tc.truncated, tc.err, got, tc.want)
		}
	}
}
