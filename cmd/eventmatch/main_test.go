package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeDemoLogs(t *testing.T) (string, string, string) {
	t.Helper()
	dir := t.TempDir()
	l1 := filepath.Join(dir, "l1.log")
	l2 := filepath.Join(dir, "l2.csv")
	pats := filepath.Join(dir, "patterns.txt")
	if err := os.WriteFile(l1, []byte("A B C\nA C B\nA B C\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	csv := "case,activity\nc1,x\nc1,y\nc1,z\nc2,x\nc2,z\nc2,y\nc3,x\nc3,y\nc3,z\n"
	if err := os.WriteFile(l2, []byte(csv), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(pats, []byte("# demo\nSEQ(A,AND(B,C))\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	return l1, l2, pats
}

func TestRunMatchesLogs(t *testing.T) {
	l1, l2, pats := writeDemoLogs(t)
	if err := run(l1, l2, "heuristic-advanced", pats, time.Minute, true, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunWritesDot(t *testing.T) {
	l1, l2, _ := writeDemoLogs(t)
	dot := filepath.Join(t.TempDir(), "out.dot")
	if err := run(l1, l2, "vertex", "", time.Minute, false, dot); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dot)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "digraph eventmatch") {
		t.Errorf("dot output malformed:\n%s", data)
	}
}

func TestRunErrors(t *testing.T) {
	l1, l2, _ := writeDemoLogs(t)
	if err := run(l1, l2, "no-such-algorithm", "", time.Minute, false, ""); err == nil {
		t.Error("bad algorithm must fail")
	}
	if err := run("/nonexistent", l2, "vertex", "", time.Minute, false, ""); err == nil {
		t.Error("missing log must fail")
	}
	if err := run(l1, l2, "vertex", "/nonexistent-patterns", time.Minute, false, ""); err == nil {
		t.Error("missing pattern file must fail")
	}
	bad := filepath.Join(t.TempDir(), "bad.txt")
	if err := os.WriteFile(bad, []byte("SEQ(\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(l1, l2, "heuristic-advanced", bad, time.Minute, false, ""); err == nil {
		t.Error("malformed pattern file must fail")
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	l1, l2, pats := writeDemoLogs(t)
	for _, algo := range []string{
		"exact", "exact-simple", "heuristic-simple", "heuristic-advanced",
		"vertex", "vertex-edge", "iterative", "entropy",
	} {
		if err := run(l1, l2, algo, pats, time.Minute, false, ""); err != nil {
			t.Errorf("%s: %v", algo, err)
		}
	}
}
