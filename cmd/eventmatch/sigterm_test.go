package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"eventmatch"
	"eventmatch/internal/gen"
	"eventmatch/internal/logio"
)

// TestMain lets the test binary impersonate the CLI: with
// EVENTMATCH_BE_MAIN=1 it runs main() instead of the tests, so the signal
// regression test below exercises the real process entrypoint — signal
// installation, anytime truncation, and the documented exit codes.
func TestMain(m *testing.M) {
	if os.Getenv("EVENTMATCH_BE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

// TestSubprocessSIGTERMPrintsPartialMapping is the regression test for
// graceful termination: a SIGTERM (not just SIGINT) mid-search must stop the
// run via the anytime path — best-so-far mapping on stdout, a "stopped
// early" notice on stderr, and the documented truncation exit code 3.
func TestSubprocessSIGTERMPrintsPartialMapping(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	dir := t.TempDir()
	// A 14-event random pair keeps the exact search busy for seconds —
	// long enough to guarantee the signal lands mid-search.
	g := gen.RandomPair(7, 14, 60, 12)
	write := func(name string, l *eventmatch.Log) string {
		path := filepath.Join(dir, name)
		var b strings.Builder
		if err := logio.Write(&b, l, logio.FormatTraceLines); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	l1 := write("l1.log", g.L1)
	l2 := write("l2.log", g.L2)
	pats := filepath.Join(dir, "patterns.txt")
	if err := os.WriteFile(pats, []byte(strings.Join(g.Patterns, "\n")+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cmd := exec.Command(os.Args[0],
		"-algorithm", "exact",
		"-patterns", pats,
		"-timeout", "5m",
		"-stats",
		l1, l2)
	cmd.Env = append(os.Environ(), "EVENTMATCH_BE_MAIN=1")
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Give the process time to load the logs and enter the search.
	time.Sleep(500 * time.Millisecond)
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}

	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case <-waitErr:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("CLI did not exit after SIGTERM; stderr:\n%s", stderr.String())
	}
	if code := cmd.ProcessState.ExitCode(); code != exitTruncated {
		t.Fatalf("exit code %d after SIGTERM, want %d (truncated)\nstdout:\n%s\nstderr:\n%s",
			code, exitTruncated, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), " -> ") {
		t.Errorf("no partial mapping on stdout after SIGTERM:\n%s", stdout.String())
	}
	if !strings.Contains(stderr.String(), "stopped early") {
		t.Errorf("stderr missing the anytime truncation notice:\n%s", stderr.String())
	}
	if !strings.Contains(stdout.String(), "stop=canceled") {
		t.Errorf("stats line missing stop=canceled:\n%s", stdout.String())
	}
}
