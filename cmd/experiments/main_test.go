package main

import (
	"testing"
	"time"

	"eventmatch/internal/experiments"
)

func TestRunTable3Only(t *testing.T) {
	cfg := experiments.Config{Seed: 7, Traces: 100, SynthTraces: 50, ExactBudget: 10 * time.Second, Runs: 2}
	selected := func(name string) bool { return name == "table3" }
	if err := run(cfg, selected); err != nil {
		t.Fatal(err)
	}
}

func TestRunTable4Only(t *testing.T) {
	cfg := experiments.Config{Seed: 7, Traces: 100, SynthTraces: 50, ExactBudget: 10 * time.Second, Runs: 3}
	selected := func(name string) bool { return name == "table4" }
	if err := run(cfg, selected); err != nil {
		t.Fatal(err)
	}
}

func TestSelectedAllByDefault(t *testing.T) {
	// With an empty want set every experiment is selected; emulate the
	// selection logic used by main.
	want := map[string]bool{}
	selected := func(name string) bool { return len(want) == 0 || want[name] }
	for _, name := range []string{"table3", "fig7", "fig12", "ablations"} {
		if !selected(name) {
			t.Errorf("%s should be selected by default", name)
		}
	}
}
