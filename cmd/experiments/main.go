// Command experiments regenerates every table and figure of the paper's
// evaluation section on the simulated workloads, printing paper-style rows.
//
// Usage:
//
//	experiments [-only table3,fig7,fig8,fig9,fig10,fig12,table4,robustness,ablations] [flags]
//
// The full paper-scale run (3,000 real-like traces, 10,000 synthetic traces,
// 1,000 Table-4 repetitions) takes a few minutes; use -quick for a reduced
// configuration.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"eventmatch/internal/experiments"
)

func main() {
	only := flag.String("only", "", "comma-separated subset of experiments to run (default: all; 'benchfreq' and 'benchstream' run only when named)")
	quick := flag.Bool("quick", false, "reduced scale for a fast smoke run")
	seed := flag.Int64("seed", 7, "workload seed")
	budget := flag.Duration("budget", 60*time.Second, "per-run budget for exact approaches")
	benchOut := flag.String("bench-out", "", "benchfreq/benchstream: write the measured bench document to this path")
	benchGate := flag.String("bench-gate", "", "benchfreq/benchstream: fail if allocs/op regressed >20% vs this committed document")
	benchReps := flag.Int("bench-reps", 0, "benchfreq/benchstream: timed repetitions per point (0 = default)")
	flag.Parse()

	cfg := experiments.Config{Seed: *seed, ExactBudget: *budget}
	if *quick {
		cfg.Traces = 800
		cfg.SynthTraces = 1000
		cfg.Runs = 50
	}

	want := map[string]bool{}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			want[strings.TrimSpace(name)] = true
		}
	}
	selected := func(name string) bool { return len(want) == 0 || want[name] }

	// The bench rig runs only when named explicitly: it is a measurement
	// tool with file side effects, not part of the paper's table/figure set.
	if want["benchfreq"] {
		if err := runBenchFreq(*benchOut, *benchGate, *benchReps); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		delete(want, "benchfreq")
		if len(want) == 0 {
			return
		}
	}
	// Same opt-in rule for the streaming-maintenance rig. The -bench-out /
	// -bench-gate flags are shared, so name only one rig per invocation when
	// using them.
	if want["benchstream"] {
		if err := runBenchStream(*benchOut, *benchGate, *benchReps); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		delete(want, "benchstream")
		if len(want) == 0 {
			return
		}
	}

	if err := run(cfg, selected); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// runBenchFreq measures the dense frequency kernel on the pinned workload
// (see internal/experiments/benchfreq.go), optionally gates allocs/op
// against a committed BENCH_freq.json, and optionally writes the fresh
// document.
func runBenchFreq(outPath, gatePath string, reps int) error {
	doc, err := experiments.RunBenchFreq(experiments.BenchFreqOptions{Reps: reps})
	if err != nil {
		return err
	}
	fmt.Printf("benchfreq: %s\n  workload: %s\n", doc.Benchmark, doc.Workload)
	fmt.Printf("  baseline %-48s %12d ns/op %8d allocs/op\n", doc.Baseline.Path, doc.Baseline.NsPerOp, doc.Baseline.AllocsPerOp)
	for _, pt := range doc.Points {
		fmt.Printf("  dense    workers=%-2d %37s %12d ns/op %8d allocs/op  %.2fx vs 1w  %.2fx vs baseline\n",
			pt.Workers, "", pt.NsPerOp, pt.AllocsPerOp, pt.SpeedupVs1W, pt.SpeedupVsBaseline)
	}
	if gatePath != "" {
		committed, err := experiments.ReadBenchFreq(gatePath)
		if err != nil {
			return err
		}
		if err := experiments.GateBenchFreq(committed, doc); err != nil {
			return err
		}
		fmt.Printf("  gate: ok (allocs/op within 20%% of %s)\n", gatePath)
	}
	if outPath != "" {
		if err := experiments.WriteBenchFreq(outPath, doc); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", outPath)
	}
	return nil
}

// runBenchStream measures per-append index maintenance — the streaming
// delta path vs a from-scratch rebuild (see
// internal/experiments/benchstream.go) — optionally gates the delta path's
// allocs/append against a committed BENCH_stream.json, and optionally
// writes the fresh document.
func runBenchStream(outPath, gatePath string, reps int) error {
	doc, err := experiments.RunBenchStream(experiments.BenchStreamOptions{Reps: reps})
	if err != nil {
		return err
	}
	fmt.Printf("benchstream: %s\n  workload: %s\n", doc.Benchmark, doc.Workload)
	fmt.Printf("  rebuild  %-48s %12d ns/append %8d allocs/append\n", doc.Rebuild.Path, doc.Rebuild.NsPerAppend, doc.Rebuild.AllocsPerAppend)
	fmt.Printf("  delta    %-48s %12d ns/append %8d allocs/append  %.0fx vs rebuild\n",
		doc.Delta.Path, doc.Delta.NsPerAppend, doc.Delta.AllocsPerAppend, doc.SpeedupVsRebuild)
	if gatePath != "" {
		committed, err := experiments.ReadBenchStream(gatePath)
		if err != nil {
			return err
		}
		if err := experiments.GateBenchStream(committed, doc); err != nil {
			return err
		}
		fmt.Printf("  gate: ok (delta allocs/append within 20%% of %s)\n", gatePath)
	}
	if outPath != "" {
		if err := experiments.WriteBenchStream(outPath, doc); err != nil {
			return err
		}
		fmt.Printf("  wrote %s\n", outPath)
	}
	return nil
}

func run(cfg experiments.Config, selected func(string) bool) error {
	out := os.Stdout
	if selected("table3") {
		experiments.PrintTable3(out, experiments.Table3(cfg))
		fmt.Fprintln(out)
	}
	figs := []struct {
		name, title, xlabel string
		run                 func(experiments.Config) ([]experiments.Point, error)
	}{
		{"fig7", "Fig. 7: exact approaches over # of events", "#events", experiments.Fig7},
		{"fig8", "Fig. 8: exact approaches over # of traces", "#traces", experiments.Fig8},
		{"fig9", "Fig. 9: heuristic approaches over # of events", "#events", experiments.Fig9},
		{"fig10", "Fig. 10: heuristic approaches over # of traces", "#traces", experiments.Fig10},
		{"fig12", "Fig. 12: larger synthetic data over # of events", "#events", experiments.Fig12},
	}
	for _, f := range figs {
		if !selected(f.name) {
			continue
		}
		points, err := f.run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		experiments.PrintFigure(out, f.title, f.xlabel, points)
	}
	if selected("table4") {
		rows, err := experiments.Table4(cfg)
		if err != nil {
			return fmt.Errorf("table4: %w", err)
		}
		experiments.PrintTable4(out, rows)
		fmt.Fprintln(out)
	}
	if selected("robustness") {
		rows, err := experiments.RobustnessSweep(cfg, []float64{0, 0.25, 0.5, 0.75, 1, 1.5, 2})
		if err != nil {
			return fmt.Errorf("robustness: %w", err)
		}
		experiments.PrintRobustness(out, rows)
	}
	if selected("ablations") {
		sizes := []int{6, 8, 10, 11}
		bounds, err := experiments.AblationBounds(cfg, sizes)
		if err != nil {
			return fmt.Errorf("ablation bounds: %w", err)
		}
		experiments.PrintAblation(out, "Ablation: A* score bounds (simple vs tight vs tight-without-Prop3)", bounds)

		order, err := experiments.AblationOrder(cfg, sizes)
		if err != nil {
			return fmt.Errorf("ablation order: %w", err)
		}
		experiments.PrintAblation(out, "Ablation: expansion order (most-patterns-first vs naive)", order)

		heur, err := experiments.AblationHeuristic(cfg, sizes)
		if err != nil {
			return fmt.Errorf("ablation heuristic: %w", err)
		}
		experiments.PrintAblation(out, "Ablation: Heuristic-Advanced phases (anchoring / repair)", heur)

		tm, err := experiments.AblationTraceIndex(cfg, 5)
		if err != nil {
			return fmt.Errorf("ablation index: %w", err)
		}
		fmt.Fprintf(out, "Ablation: It trace index — pattern frequency counting, 5 repetitions\n")
		fmt.Fprintf(out, "  full-scan: %v   indexed: %v   speedup: %.1fx\n\n",
			tm.Direct, tm.Indexed, float64(tm.Direct)/float64(tm.Indexed+1))
	}
	return nil
}
