package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"

	"eventmatch/internal/gen"
	"eventmatch/internal/logio"
	"eventmatch/internal/server"
	"eventmatch/internal/server/client"
	"eventmatch/internal/server/store"
	"eventmatch/internal/telemetry"

	"eventmatch"
)

// TestMain lets the test binary impersonate the daemon: with
// EVENTMATCHD_BE_MAIN=1 it runs main() instead of the tests, so subprocess
// tests (SIGTERM drain, the e2e gate) exercise the real binary entrypoint
// without a separate `go build`.
func TestMain(m *testing.M) {
	if os.Getenv("EVENTMATCHD_BE_MAIN") == "1" {
		main()
		return
	}
	os.Exit(m.Run())
}

func testOptions() daemonOptions {
	return daemonOptions{
		addr:           "127.0.0.1:0",
		workers:        2,
		queueDepth:     4,
		searchWorkers:  1,
		deadline:       10 * time.Second,
		maxDeadline:    time.Minute,
		maxUploadBytes: 4 << 20,
		drainTimeout:   5 * time.Second,
	}
}

func fig1Inputs(t *testing.T) (log1, log2, patterns, truth []byte) {
	t.Helper()
	g := gen.Fig1()
	render := func(l *eventmatch.Log) []byte {
		var b strings.Builder
		if err := logio.Write(&b, l, logio.FormatTraceLines); err != nil {
			t.Fatal(err)
		}
		return []byte(b.String())
	}
	var tb strings.Builder
	for v1, v2 := range g.Truth {
		if v2 >= 0 {
			fmt.Fprintf(&tb, "%s -> %s\n", g.L1.Alphabet.Name(eventmatch.EventID(v1)), g.L2.Alphabet.Name(v2))
		}
	}
	return render(g.L1), render(g.L2),
		[]byte(strings.Join(g.Patterns, "\n") + "\n"), []byte(tb.String())
}

// TestRunServesAndDrains boots run() in-process, completes one real job
// through the client, then cancels the context (the signal path) and
// expects a clean drain with a metrics file left behind.
func TestRunServesAndDrains(t *testing.T) {
	o := testOptions()
	o.metricsJSON = filepath.Join(t.TempDir(), "metrics.json")

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ready := make(chan string, 1)
	done := make(chan struct{})
	var (
		code   int
		runErr error
	)
	go func() {
		defer close(done)
		code, runErr = run(ctx, o, io.Discard, func(addr string) { ready <- addr })
	}()

	var addr string
	select {
	case addr = <-ready:
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}

	c := client.New("http://"+addr, nil)
	cctx, ccancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer ccancel()
	if err := c.Health(cctx); err != nil {
		t.Fatalf("health: %v", err)
	}
	log1, log2, patterns, truth := fig1Inputs(t)
	st, err := c.SubmitUpload(cctx,
		client.Upload{Name: "l1.log", Data: log1},
		client.Upload{Name: "l2.log", Data: log2},
		patterns, truth,
		server.SubmitRequest{Algorithm: "heuristic-advanced"})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := c.Wait(cctx, st.ID, 5*time.Millisecond)
	if err != nil || final.State != server.StateDone {
		t.Fatalf("wait: %v (state %s)", err, final.State)
	}
	res, err := c.Result(cctx, st.ID)
	if err != nil || len(res.Pairs) == 0 {
		t.Fatalf("result: %v (%d pairs)", err, len(res.Pairs))
	}

	cancel() // the SIGINT/SIGTERM path
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("daemon did not drain")
	}
	if runErr != nil || code != exitOK {
		t.Fatalf("run returned %d, %v", code, runErr)
	}

	data, err := os.ReadFile(o.metricsJSON)
	if err != nil {
		t.Fatalf("metrics file: %v", err)
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("metrics JSON: %v\n%s", err, data)
	}
	if snap.Counter("server.jobs_completed") == 0 {
		t.Errorf("flushed metrics missing completions:\n%s", data)
	}
}

func TestRunBadListenAddr(t *testing.T) {
	o := testOptions()
	o.addr = "256.0.0.1:bad"
	code, err := run(context.Background(), o, io.Discard, nil)
	if err == nil || code != exitError {
		t.Fatalf("run = %d, %v; want exit 1 with error", code, err)
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("eventmatchd", flag.ContinueOnError)
	o := parseFlags(fs, []string{"-addr", ":0", "-workers", "3", "-queue-depth", "5"})
	if o.addr != ":0" || o.workers != 3 || o.queueDepth != 5 {
		t.Fatalf("parsed %+v", o)
	}
	if o.deadline != 30*time.Second || o.drainTimeout != 15*time.Second {
		t.Fatalf("defaults drifted: %+v", o)
	}
}

// startDaemon re-execs the test binary as the real daemon and scrapes the
// bound address off stdout.
func startDaemon(t *testing.T, args ...string) (*exec.Cmd, string, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "EVENTMATCHD_BE_MAIN=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(stdout)
	addrCh := make(chan string, 1)
	go func() {
		for sc.Scan() {
			line := sc.Text()
			if rest, ok := strings.CutPrefix(line, "eventmatchd listening on http://"); ok {
				addrCh <- rest
			}
		}
	}()
	select {
	case addr := <-addrCh:
		return cmd, addr, &stderr
	case <-time.After(20 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon subprocess never announced its address; stderr:\n%s", stderr.String())
		return nil, "", nil
	}
}

// TestSubprocessSIGTERMDrains sends the real binary a SIGTERM mid-serve and
// requires exit code 0 — the graceful-drain contract at the process level.
func TestSubprocessSIGTERMDrains(t *testing.T) {
	if testing.Short() {
		t.Skip("subprocess test")
	}
	metrics := filepath.Join(t.TempDir(), "metrics.json")
	cmd, addr, stderr := startDaemon(t, "-addr", "127.0.0.1:0", "-metrics-json", metrics)

	c := client.New("http://"+addr, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := c.Health(ctx); err != nil {
		t.Fatalf("health: %v", err)
	}

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon did not exit after SIGTERM; stderr:\n%s", stderr.String())
	}
	if _, err := os.Stat(metrics); err != nil {
		t.Errorf("metrics not flushed on SIGTERM: %v", err)
	}
}

// TestE2EServe is the CI end-to-end gate (set EVENTMATCHD_E2E=1): the real
// daemon process serves the full lifecycle against the Fig. 1 workload —
// submit → poll → result, parity with the cmd/eventmatch CLI on the same
// inputs, backpressure 429 when the queue is full, cancel mid-search,
// nonzero server telemetry, and a graceful SIGTERM exit 0.
func TestE2EServe(t *testing.T) {
	if os.Getenv("EVENTMATCHD_E2E") != "1" {
		t.Skip("set EVENTMATCHD_E2E=1 to run the end-to-end serve gate")
	}
	dir := t.TempDir()
	log1, log2, patterns, truth := fig1Inputs(t)
	paths := map[string][]byte{
		"l1.log": log1, "l2.log": log2, "patterns.txt": patterns, "truth.txt": truth,
	}
	for name, data := range paths {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	metrics := filepath.Join(dir, "metrics.json")
	cmd, addr, stderr := startDaemon(t,
		"-addr", "127.0.0.1:0",
		"-workers", "1",
		"-queue-depth", "1",
		"-metrics-json", metrics)
	defer func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	c := client.New("http://"+addr, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// 1. Full cycle: submit the Fig. 1 job, poll to done, fetch the result.
	st, err := c.SubmitUpload(ctx,
		client.Upload{Name: "l1.log", Data: log1},
		client.Upload{Name: "l2.log", Data: log2},
		patterns, truth,
		server.SubmitRequest{Algorithm: "heuristic-advanced", TimeoutMS: 60_000})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	final, err := c.Wait(ctx, st.ID, 10*time.Millisecond)
	if err != nil || final.State != server.StateDone {
		t.Fatalf("wait: %v (state %s, err %q)", err, final.State, final.Error)
	}
	res, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}
	if res.Quality == nil || res.Quality.FMeasure <= 0 {
		t.Fatalf("quality missing or zero: %+v", res.Quality)
	}

	// 2. Parity: the CLI on the same inputs must print the same mapping.
	cliPairs, cliScore := runCLI(t, dir)
	if len(cliPairs) != len(res.Pairs) {
		t.Fatalf("daemon %d pairs, CLI %d pairs\ndaemon: %v\ncli: %v",
			len(res.Pairs), len(cliPairs), res.Pairs, cliPairs)
	}
	for k, v := range cliPairs {
		if res.Pairs[k] != v {
			t.Errorf("pair %s: daemon %q, CLI %q", k, res.Pairs[k], v)
		}
	}
	if fmt.Sprintf("%.4f", res.Score) != cliScore {
		t.Errorf("daemon score %.4f, CLI score %s", res.Score, cliScore)
	}

	// 3. Backpressure: a slow exact job + one queued job fill the 1-worker /
	// 1-slot daemon; the next submission must be rejected with 429.
	g := gen.RandomPair(3, 14, 60, 12)
	render := func(l *eventmatch.Log) []byte {
		var b strings.Builder
		if err := logio.Write(&b, l, logio.FormatTraceLines); err != nil {
			t.Fatal(err)
		}
		return []byte(b.String())
	}
	slowReq := server.SubmitRequest{Algorithm: "exact", TimeoutMS: 120_000}
	slow1, err := c.SubmitUpload(ctx, client.Upload{Name: "s1.log", Data: render(g.L1)},
		client.Upload{Name: "s2.log", Data: render(g.L2)},
		[]byte(strings.Join(g.Patterns, "\n")), nil, slowReq)
	if err != nil {
		t.Fatalf("slow submit 1: %v", err)
	}
	slow2, err := c.SubmitUpload(ctx, client.Upload{Name: "s1.log", Data: render(g.L1)},
		client.Upload{Name: "s2.log", Data: render(g.L2)},
		[]byte(strings.Join(g.Patterns, "\n")), nil, slowReq)
	if err != nil {
		t.Fatalf("slow submit 2: %v", err)
	}
	var sat *client.SaturatedError
	_, err = c.SubmitUpload(ctx, client.Upload{Name: "s1.log", Data: render(g.L1)},
		client.Upload{Name: "s2.log", Data: render(g.L2)},
		[]byte(strings.Join(g.Patterns, "\n")), nil, slowReq)
	if !errors.As(err, &sat) {
		t.Fatalf("third submission error = %v, want 429/SaturatedError", err)
	}
	if sat.RetryAfter <= 0 {
		t.Errorf("Retry-After hint = %v, want > 0", sat.RetryAfter)
	}

	// 4. Cancel mid-search: the running exact job must come back done,
	// truncated, with a best-so-far mapping and StopReason "canceled".
	if _, err := c.Cancel(ctx, slow1.ID); err != nil {
		t.Fatalf("cancel: %v", err)
	}
	cfinal, err := c.Wait(ctx, slow1.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait canceled: %v", err)
	}
	if cfinal.State != server.StateDone || cfinal.StopReason != "canceled" {
		t.Fatalf("canceled job: state %s stop %q, want done/canceled", cfinal.State, cfinal.StopReason)
	}
	cres, err := c.Result(ctx, slow1.ID)
	if err != nil || len(cres.Pairs) == 0 || !cres.Truncated {
		t.Fatalf("canceled result: %v (pairs %d, truncated %v)", err, len(cres.Pairs), cres.Truncated)
	}
	if _, err := c.Cancel(ctx, slow2.ID); err != nil {
		t.Fatalf("cancel queued: %v", err)
	}
	if _, err := c.Wait(ctx, slow2.ID, 10*time.Millisecond); err != nil {
		t.Fatalf("wait queued-canceled: %v", err)
	}

	// 5. Telemetry: the live snapshot must show real server activity.
	snap, err := c.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	for _, counter := range []string{"server.jobs_submitted", "server.jobs_completed", "server.jobs_rejected", "server.jobs_canceled"} {
		if snap.Counter(counter) == 0 {
			t.Errorf("telemetry counter %s = 0, want > 0\n%+v", counter, snap.Counters)
		}
	}
	if _, ok := snap.Gauges["server.queue_capacity"]; !ok {
		t.Errorf("telemetry missing queue capacity gauge: %+v", snap.Gauges)
	}

	// 6. Graceful SIGTERM: exit 0 and a flushed metrics file.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon hung on SIGTERM; stderr:\n%s", stderr.String())
	}
	data, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatalf("flushed metrics: %v", err)
	}
	var flushed telemetry.Snapshot
	if err := json.Unmarshal(data, &flushed); err != nil {
		t.Fatalf("flushed metrics JSON: %v\n%s", err, data)
	}
	if flushed.Counter("server.jobs_completed") == 0 {
		t.Errorf("flushed metrics missing completions:\n%s", data)
	}
}

// TestE2ECrashRecovery is the CI crash-recovery gate (set EVENTMATCHD_E2E=1):
// a durable daemon (-data-dir) completes one job and is running a second when
// it gets kill -9 mid-search. A fresh daemon on the same directory must serve
// the completed result from disk with identical pairs and score, re-run the
// interrupted job seeded from its last persisted checkpoint (final score never
// below the checkpointed score), and leave every journaled job terminal. A
// final offline replay of the journal double-checks that.
func TestE2ECrashRecovery(t *testing.T) {
	if os.Getenv("EVENTMATCHD_E2E") != "1" {
		t.Skip("set EVENTMATCHD_E2E=1 to run the crash-recovery gate")
	}
	dataDir := t.TempDir()
	log1, log2, patterns, truth := fig1Inputs(t)
	durableArgs := []string{
		"-addr", "127.0.0.1:0",
		"-workers", "1",
		"-data-dir", dataDir,
		"-checkpoint-every", "25ms",
	}
	cmd, addr, stderr := startDaemon(t, durableArgs...)
	killed := false
	defer func() {
		if !killed && cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	c := client.New("http://"+addr, nil)
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// 1. One job completes before the crash; its result must survive it.
	st1, err := c.SubmitUpload(ctx,
		client.Upload{Name: "l1.log", Data: log1},
		client.Upload{Name: "l2.log", Data: log2},
		patterns, truth,
		server.SubmitRequest{Algorithm: "heuristic-advanced", TimeoutMS: 60_000})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	if final, err := c.Wait(ctx, st1.ID, 10*time.Millisecond); err != nil || final.State != server.StateDone {
		t.Fatalf("wait: %v (state %s)", err, final.State)
	}
	res1, err := c.Result(ctx, st1.ID)
	if err != nil {
		t.Fatalf("result: %v", err)
	}

	// 2. A slow exact job; wait until a best-so-far checkpoint with a real
	// mapping hits the journal, so the crash lands mid-search with durable
	// progress behind it.
	g := gen.RandomPair(3, 14, 60, 12)
	render := func(l *eventmatch.Log) []byte {
		var b strings.Builder
		if err := logio.Write(&b, l, logio.FormatTraceLines); err != nil {
			t.Fatal(err)
		}
		return []byte(b.String())
	}
	st2, err := c.SubmitUpload(ctx,
		client.Upload{Name: "s1.log", Data: render(g.L1)},
		client.Upload{Name: "s2.log", Data: render(g.L2)},
		[]byte(strings.Join(g.Patterns, "\n")), nil,
		server.SubmitRequest{Algorithm: "exact", TimeoutMS: 120_000})
	if err != nil {
		t.Fatalf("slow submit: %v", err)
	}
	ckScore := 0.0
	ckDeadline := time.Now().Add(60 * time.Second)
	for {
		if s, ok := bestJournalCheckpoint(t, dataDir, st2.ID); ok {
			ckScore = s
			break
		}
		if time.Now().After(ckDeadline) {
			t.Fatalf("no checkpoint for %s reached the journal; stderr:\n%s", st2.ID, stderr.String())
		}
		time.Sleep(25 * time.Millisecond)
	}

	// 3. Crash hard: no drain, no final journal records.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	// 4. Restart on the same directory. The connection-refused window while
	// the daemon reboots is exactly what the client retry layer is for.
	cmd2, addr2, stderr2 := startDaemon(t, durableArgs...)
	defer func() {
		if cmd2.ProcessState == nil {
			cmd2.Process.Kill()
			cmd2.Wait()
		}
	}()
	c2 := client.New("http://"+addr2, nil).WithRetry(client.DefaultRetryPolicy())

	// 5. The completed job's result is served from disk: exact parity.
	res1b, err := c2.Result(ctx, st1.ID)
	if err != nil {
		t.Fatalf("recovered result: %v; stderr:\n%s", err, stderr2.String())
	}
	if res1b.Score != res1.Score || len(res1b.Pairs) != len(res1.Pairs) {
		t.Fatalf("recovered result drifted: score %v→%v, %d→%d pairs",
			res1.Score, res1b.Score, len(res1.Pairs), len(res1b.Pairs))
	}
	for k, v := range res1.Pairs {
		if res1b.Pairs[k] != v {
			t.Errorf("recovered pair %s: %q, want %q", k, res1b.Pairs[k], v)
		}
	}

	// 6. The interrupted job was requeued and re-seeded. Let the resumed
	// search run briefly, then cancel: the anytime result must score at least
	// the persisted checkpoint (the seed is a floor, not a hint).
	runDeadline := time.Now().Add(60 * time.Second)
	for {
		js, err := c2.Status(ctx, st2.ID)
		if err != nil {
			t.Fatalf("recovered status: %v", err)
		}
		if js.State == server.StateRunning || js.State == server.StateDone || js.State == server.StateFailed {
			break
		}
		if time.Now().After(runDeadline) {
			t.Fatalf("requeued job never ran (state %s); stderr:\n%s", js.State, stderr2.String())
		}
		time.Sleep(20 * time.Millisecond)
	}
	time.Sleep(250 * time.Millisecond)
	c2.Cancel(ctx, st2.ID) //nolint:errcheck // no-op if the job already finished
	final2, err := c2.Wait(ctx, st2.ID, 10*time.Millisecond)
	if err != nil {
		t.Fatalf("wait requeued: %v", err)
	}
	if final2.State != server.StateDone {
		t.Fatalf("requeued job ended %s (%s), want done; stderr:\n%s", final2.State, final2.Error, stderr2.String())
	}
	res2, err := c2.Result(ctx, st2.ID)
	if err != nil || len(res2.Pairs) == 0 {
		t.Fatalf("requeued result: %v (%d pairs)", err, len(res2.Pairs))
	}
	if res2.Score < ckScore-1e-9 {
		t.Fatalf("resumed search regressed below its checkpoint: %v < %v", res2.Score, ckScore)
	}

	// 7. Clean exit, then an offline replay: every journaled job terminal,
	// results still on disk, journal un-torn after the repair + reappends.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd2.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("recovered daemon exited non-zero: %v; stderr:\n%s", err, stderr2.String())
		}
	case <-time.After(60 * time.Second):
		cmd2.Process.Kill()
		t.Fatalf("recovered daemon hung on SIGTERM; stderr:\n%s", stderr2.String())
	}
	stc, rec, err := store.Open(ctx, dataDir, store.Options{Telemetry: telemetry.NewRegistry()})
	if err != nil {
		t.Fatalf("final replay: %v", err)
	}
	defer stc.Close()
	if rec.Torn != 0 {
		t.Errorf("journal still torn after repair: %d", rec.Torn)
	}
	if len(rec.Jobs) != 2 {
		t.Fatalf("final replay found %d jobs, want 2", len(rec.Jobs))
	}
	for _, j := range rec.Jobs {
		if !j.Terminal() {
			t.Errorf("job %s not terminal after recovery: state %q", j.ID, j.State)
		}
		if j.ResultHash != "" {
			if _, err := stc.Artifact(ctx, j.ResultHash); err != nil {
				t.Errorf("job %s result artifact missing: %v", j.ID, err)
			}
		}
	}
}

// bestJournalCheckpoint scans the journal for jobID's highest-scoring
// checkpoint that carries a non-empty mapping.
func bestJournalCheckpoint(t *testing.T, dataDir, jobID string) (float64, bool) {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(dataDir, "journal.log"))
	if err != nil {
		return 0, false
	}
	best, found := 0.0, false
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) < 10 {
			continue
		}
		var r store.Record
		if json.Unmarshal(line[9:], &r) != nil {
			continue
		}
		if r.Type == store.RecordCheckpoint && r.JobID == jobID &&
			r.Checkpoint != nil && len(r.Checkpoint.Pairs) > 0 {
			found = true
			if r.Checkpoint.Score > best {
				best = r.Checkpoint.Score
			}
		}
	}
	return best, found
}

// runCLI runs cmd/eventmatch on the written Fig. 1 inputs and parses its
// "A -> 1" mapping lines and the -stats score.
func runCLI(t *testing.T, dir string) (map[string]string, string) {
	t.Helper()
	out, err := exec.Command("go", "run", "eventmatch/cmd/eventmatch",
		"-algorithm", "heuristic-advanced",
		"-patterns", filepath.Join(dir, "patterns.txt"),
		"-stats",
		filepath.Join(dir, "l1.log"), filepath.Join(dir, "l2.log")).Output()
	if err != nil {
		var ee *exec.ExitError
		if errors.As(err, &ee) {
			t.Fatalf("cmd/eventmatch: %v\n%s", err, ee.Stderr)
		}
		t.Fatalf("cmd/eventmatch: %v", err)
	}
	pairs := make(map[string]string)
	score := ""
	for _, line := range strings.Split(string(out), "\n") {
		if rest, ok := strings.CutPrefix(line, "# "); ok {
			for _, field := range strings.Fields(rest) {
				if v, ok := strings.CutPrefix(field, "score="); ok {
					score = v
				}
			}
			continue
		}
		if a, b, ok := strings.Cut(line, " -> "); ok {
			pairs[strings.TrimSpace(a)] = strings.TrimSpace(b)
		}
	}
	if len(pairs) == 0 || score == "" {
		t.Fatalf("could not parse CLI output:\n%s", out)
	}
	return pairs, score
}

// TestE2EFairness is the CI multi-tenant fairness gate (set
// EVENTMATCHD_E2E=1): the real daemon runs with per-tenant rate limits,
// queue slices and fair-share weights while tenant "heavy" floods it with
// slow exact jobs and tenant "light" keeps submitting quick ones. The
// contract under contention: light's jobs are never starved (bounded p95
// turnaround), light's concurrent results are bit-identical to its serial
// baseline, heavy's flood is answered with per-tenant 429s carrying sane
// Retry-After hints, and the per-tenant telemetry rollup accounts for all of
// it. Set EVENTMATCHD_FAIRNESS_SNAPSHOT to keep the metrics snapshot (CI
// uploads it as an artifact).
func TestE2EFairness(t *testing.T) {
	if os.Getenv("EVENTMATCHD_E2E") != "1" {
		t.Skip("set EVENTMATCHD_E2E=1 to run the fairness gate")
	}
	log1, log2, patterns, truth := fig1Inputs(t)
	metrics := filepath.Join(t.TempDir(), "metrics.json")
	cmd, addr, stderr := startDaemon(t,
		"-addr", "127.0.0.1:0",
		"-workers", "2",
		"-queue-depth", "12",
		"-tenant-queue-depth", "8",
		"-tenant-weights", "heavy=1,light=3",
		"-tenant-rates", "20/s",
		"-metrics-json", metrics)
	defer func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	base := client.New("http://"+addr, nil)
	heavyC := base.WithTenant("heavy")
	lightC := base.WithTenant("light")
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()

	submitLight := func() (server.JobStatus, error) {
		return lightC.SubmitUpload(ctx,
			client.Upload{Name: "l1.log", Data: log1},
			client.Upload{Name: "l2.log", Data: log2},
			patterns, truth,
			server.SubmitRequest{Algorithm: "heuristic-advanced", TimeoutMS: 60_000})
	}

	// 1. Serial baseline: one light job on the idle daemon. Every light
	// result produced under the flood must match it bit for bit.
	st0, err := submitLight()
	if err != nil {
		t.Fatalf("baseline submit: %v", err)
	}
	if final, err := lightC.Wait(ctx, st0.ID, 10*time.Millisecond); err != nil || final.State != server.StateDone {
		t.Fatalf("baseline wait: %v (state %s)", err, final.State)
	}
	baseline, err := lightC.Result(ctx, st0.ID)
	if err != nil {
		t.Fatalf("baseline result: %v", err)
	}

	// 2. The heavy flood: slow exact jobs submitted far faster than the
	// 20/s budget until the limiter pushes back and the tenant's queue
	// slice is full. Runs concurrently with the light submitter below.
	g := gen.RandomPair(3, 14, 60, 12)
	render := func(l *eventmatch.Log) []byte {
		var b strings.Builder
		if err := logio.Write(&b, l, logio.FormatTraceLines); err != nil {
			t.Fatal(err)
		}
		return []byte(b.String())
	}
	h1, h2 := render(g.L1), render(g.L2)
	hpat := []byte(strings.Join(g.Patterns, "\n"))

	var (
		heavyIDs    []string
		rateLimited int
		queueFull   int
	)
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		deadline := time.Now().Add(20 * time.Second)
		for time.Now().Before(deadline) && (len(heavyIDs) < 10 || rateLimited < 3) {
			st, err := heavyC.SubmitUpload(ctx,
				client.Upload{Name: "h1.log", Data: h1},
				client.Upload{Name: "h2.log", Data: h2},
				hpat, nil,
				server.SubmitRequest{Algorithm: "exact", TimeoutMS: 1200})
			var sat *client.SaturatedError
			switch {
			case err == nil:
				if len(heavyIDs) < 10 {
					heavyIDs = append(heavyIDs, st.ID)
				} else {
					heavyC.Cancel(ctx, st.ID) //nolint:errcheck // over-target stragglers
				}
			case errors.As(err, &sat):
				if sat.RateLimited() {
					rateLimited++
					if sat.RetryAfter <= 0 || sat.RetryAfter > 5*time.Second {
						t.Errorf("rate-limit Retry-After = %v, want (0s, 5s]", sat.RetryAfter)
					}
				} else {
					queueFull++
					if sat.RetryAfter <= 0 {
						t.Errorf("queue-full Retry-After = %v, want > 0", sat.RetryAfter)
					}
				}
			default:
				t.Errorf("heavy submit: %v", err)
				return
			}
			time.Sleep(15 * time.Millisecond)
		}
	}()

	// 3. The light tenant under the flood: sequential quick jobs, each
	// timed submit-to-done and checked against the serial baseline.
	const lightJobs = 10
	var latencies []time.Duration
	for i := 0; i < lightJobs; i++ {
		start := time.Now()
		st, err := submitLight()
		var sat *client.SaturatedError
		if errors.As(err, &sat) {
			// The aggregate queue can briefly fill; honor the hint once.
			time.Sleep(sat.RetryAfter)
			st, err = submitLight()
		}
		if err != nil {
			t.Fatalf("light submit %d: %v", i, err)
		}
		final, err := lightC.Wait(ctx, st.ID, 10*time.Millisecond)
		if err != nil || final.State != server.StateDone {
			t.Fatalf("light wait %d: %v (state %s)", i, err, final.State)
		}
		latencies = append(latencies, time.Since(start))
		res, err := lightC.Result(ctx, st.ID)
		if err != nil {
			t.Fatalf("light result %d: %v", i, err)
		}
		if res.Score != baseline.Score || len(res.Pairs) != len(baseline.Pairs) {
			t.Fatalf("light job %d drifted from serial baseline: score %v→%v, %d→%d pairs",
				i, baseline.Score, res.Score, len(baseline.Pairs), len(res.Pairs))
		}
		for k, v := range baseline.Pairs {
			if res.Pairs[k] != v {
				t.Errorf("light job %d pair %s: %q, want %q", i, k, res.Pairs[k], v)
			}
		}
	}
	select {
	case <-floodDone:
	case <-time.After(30 * time.Second):
		t.Fatal("heavy flood never finished")
	}

	// 4. Fairness: light's p95 turnaround stays bounded even though heavy
	// kept both workers saturated with 1.2s exact searches. Without the
	// weighted-fair queue, every light job would sit behind heavy's whole
	// backlog (~5s each); with it, a light job waits at most one heavy
	// service time plus its own few-ms run.
	sorted := append([]time.Duration(nil), latencies...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	p95 := sorted[len(sorted)*95/100]
	if p95 > 10*time.Second {
		t.Errorf("light p95 turnaround = %v, want <= 10s (all: %v)", p95, latencies)
	}

	// 5. The flood was answered with per-tenant policy, not starvation:
	// rate-limit 429s for heavy, none for light, and every admitted heavy
	// job still reaches a real terminal state.
	if rateLimited < 3 {
		t.Errorf("heavy rate-limit rejections = %d, want >= 3 (queue-full %d)", rateLimited, queueFull)
	}
	for _, id := range heavyIDs {
		final, err := heavyC.Wait(ctx, id, 10*time.Millisecond)
		if err != nil {
			t.Fatalf("heavy wait %s: %v", id, err)
		}
		if final.State != server.StateDone {
			t.Errorf("heavy job %s ended %s (%s), want done", id, final.State, final.Error)
		}
	}

	// 6. The per-tenant telemetry rollup accounts for both tenants.
	snap, err := base.Metrics(ctx)
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	if got := snap.Counter("server.tenant.heavy.rejected_rate"); got < 3 {
		t.Errorf("server.tenant.heavy.rejected_rate = %d, want >= 3", got)
	}
	if got := snap.Counter("server.tenant.light.rejected_rate"); got != 0 {
		t.Errorf("server.tenant.light.rejected_rate = %d, want 0", got)
	}
	if got := snap.Counter("server.tenant.light.completed"); got != lightJobs+1 {
		t.Errorf("server.tenant.light.completed = %d, want %d", got, lightJobs+1)
	}
	if got := snap.Counter("server.jobs_rate_limited"); got < 3 {
		t.Errorf("server.jobs_rate_limited = %d, want >= 3", got)
	}
	if n, total := snap.Timer("server.tenant.light.job_wait"); n == 0 {
		t.Error("server.tenant.light.job_wait never observed")
	} else if mean := total / time.Duration(n); mean > 5*time.Second {
		t.Errorf("light mean queue wait = %v, want <= 5s", mean)
	}
	if path := os.Getenv("EVENTMATCHD_FAIRNESS_SNAPSHOT"); path != "" {
		data, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Errorf("fairness snapshot: %v", err)
		}
	}

	// 7. Graceful exit under multi-tenant config: SIGTERM still drains to 0.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	waitErr := make(chan error, 1)
	go func() { waitErr <- cmd.Wait() }()
	select {
	case err := <-waitErr:
		if err != nil {
			t.Fatalf("daemon exited non-zero after SIGTERM: %v; stderr:\n%s", err, stderr.String())
		}
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("daemon hung on SIGTERM; stderr:\n%s", stderr.String())
	}
}
