// Command eventmatchd is the event-matching daemon: a long-running HTTP
// service that accepts matching jobs (two event logs, optional patterns and
// ground truth), runs them on a bounded worker pool behind an
// admission-controlled queue, and serves the asynchronous job lifecycle —
// submit, poll with in-flight progress, fetch result, cancel.
//
// Usage:
//
//	eventmatchd [flags]
//
// Flags:
//
//	-addr            listen address (default 127.0.0.1:8080; use :0 for an
//	                 ephemeral port — the bound address is printed on stdout)
//	-workers         concurrent jobs (default 2)
//	-queue-depth     aggregate admission queue depth; beyond it submissions
//	                 get 429 with Retry-After (default 8)
//	-tenant-queue-depth  per-tenant share of the admission queue; one
//	                 tenant's backlog can never occupy more slots than this
//	                 (default 0 = the full -queue-depth)
//	-tenant-weights  weighted-fair scheduling weights, "name=weight" pairs
//	                 ("alpha=3,beta=1"); unlisted tenants weigh 1
//	-tenant-rates    per-tenant rate limits, "count/window" pairs
//	                 ("10/s,200/m"); over-limit submissions get 429 with a
//	                 limiter-derived Retry-After. Empty = no rate limiting
//	-search-workers  per-job search parallelism and its clamp (default 1)
//	-max-sessions    concurrently live streaming sessions (default 8)
//	-session-backlog per-session bound on traces admitted ahead of the last
//	                 published mapping; beyond it appends get 429 (default 256)
//	-deadline        default per-job search budget (default 30s)
//	-max-deadline    clamp for client-requested budgets (default 5m)
//	-max-upload-bytes  request body / per-log size cap (default 32 MiB)
//	-drain-timeout   how long a shutdown waits for in-flight jobs before
//	                 force-canceling them into anytime results (default 15s)
//	-metrics-json FILE  write the final telemetry snapshot here on exit
//	-data-dir DIR    durable state directory (fsync'd job journal +
//	                 content-addressed artifacts). On boot the journal is
//	                 replayed: finished results are served from disk and
//	                 interrupted jobs re-run, re-seeded from their last
//	                 persisted checkpoint. Empty = in-memory only.
//	-checkpoint-every  how often running searches persist a best-so-far
//	                 checkpoint (default 2s; only meaningful with -data-dir)
//
// The daemon drains gracefully on SIGINT or SIGTERM: admission stops
// (submissions answer 503, /healthz reports draining), queued and running
// jobs get -drain-timeout to finish, anything still running is then
// force-canceled — the anytime searches checkpoint a truncated best-so-far
// result instead of losing the job — metrics are flushed, and the process
// exits 0.
//
// Exit codes: 0 after a clean drain, 1 on startup or serve errors, 2 on
// usage errors.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"eventmatch/internal/server"
	"eventmatch/internal/server/store"
	"eventmatch/internal/server/tenant"
	"eventmatch/internal/telemetry"
)

const (
	exitOK    = 0
	exitError = 1
	exitUsage = 2
)

type daemonOptions struct {
	addr             string
	workers          int
	queueDepth       int
	tenantQueueDepth int
	tenantWeights    string
	tenantRates      string
	searchWorkers    int
	maxSessions      int
	sessionBacklog   int
	deadline         time.Duration
	maxDeadline      time.Duration
	maxUploadBytes   int64
	drainTimeout     time.Duration
	metricsJSON      string
	dataDir          string
	checkpointEvery  time.Duration
}

func main() {
	fs := flag.NewFlagSet("eventmatchd", flag.ExitOnError)
	o := parseFlags(fs, os.Args[1:])
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	code, err := run(ctx, o, os.Stdout, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "eventmatchd:", err)
	}
	os.Exit(code)
}

func parseFlags(fs *flag.FlagSet, args []string) daemonOptions {
	var o daemonOptions
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8080", "listen address (:0 = ephemeral port)")
	fs.IntVar(&o.workers, "workers", 2, "concurrent jobs")
	fs.IntVar(&o.queueDepth, "queue-depth", 8, "aggregate admission queue depth (full queue = 429)")
	fs.IntVar(&o.tenantQueueDepth, "tenant-queue-depth", 0, "per-tenant queue share (0 = full -queue-depth)")
	fs.StringVar(&o.tenantWeights, "tenant-weights", "", "weighted-fair tenant weights, e.g. alpha=3,beta=1")
	fs.StringVar(&o.tenantRates, "tenant-rates", "", "per-tenant rate limits, e.g. 10/s,200/m (empty = unlimited)")
	fs.IntVar(&o.searchWorkers, "search-workers", 1, "per-job search parallelism")
	fs.IntVar(&o.maxSessions, "max-sessions", 8, "concurrently live streaming sessions")
	fs.IntVar(&o.sessionBacklog, "session-backlog", 256, "per-session append backlog (traces ahead of the matcher)")
	fs.DurationVar(&o.deadline, "deadline", 30*time.Second, "default per-job search budget")
	fs.DurationVar(&o.maxDeadline, "max-deadline", 5*time.Minute, "clamp for client-requested budgets")
	fs.Int64Var(&o.maxUploadBytes, "max-upload-bytes", 32<<20, "request body size cap")
	fs.DurationVar(&o.drainTimeout, "drain-timeout", 15*time.Second, "shutdown grace for in-flight jobs")
	fs.StringVar(&o.metricsJSON, "metrics-json", "", "write the final telemetry snapshot to this file on exit")
	fs.StringVar(&o.dataDir, "data-dir", "", "durable state directory (journal + artifacts); empty = in-memory only")
	fs.DurationVar(&o.checkpointEvery, "checkpoint-every", 0, "durable search-checkpoint cadence (0 = default 2s; needs -data-dir)")
	fs.Usage = func() {
		fmt.Fprintf(fs.Output(), "usage: eventmatchd [flags]\n")
		fs.PrintDefaults()
	}
	_ = fs.Parse(args) // ExitOnError: Parse handles its own failures
	if fs.NArg() != 0 {
		fs.Usage()
		os.Exit(exitUsage)
	}
	return o
}

// run boots the daemon and blocks until ctx is canceled (the signal path)
// and the drain completes. onReady, when non-nil, receives the bound address
// once the listener is up — tests use it instead of scraping stdout.
func run(ctx context.Context, o daemonOptions, stdout io.Writer, onReady func(addr string)) (int, error) {
	rates, err := tenant.ParseRates(o.tenantRates)
	if err != nil {
		return exitUsage, err
	}
	weights, err := tenant.ParseWeights(o.tenantWeights)
	if err != nil {
		return exitUsage, err
	}

	reg := telemetry.NewRegistry()
	if err := reg.PublishExpvar("eventmatchd"); err != nil {
		return exitError, err
	}

	// Durable mode: open the journal + artifact store, replay it, and hand
	// the recovered jobs to the server below. Without -data-dir the daemon
	// runs fully in-memory, as before.
	var (
		st       *store.Store
		recovery *store.Recovery
	)
	if o.dataDir != "" {
		var err error
		st, recovery, err = store.Open(ctx, o.dataDir, store.Options{Telemetry: reg})
		if err != nil {
			return exitError, err
		}
		defer st.Close()
	}

	srv := server.New(server.Config{
		Workers:          o.workers,
		QueueDepth:       o.queueDepth,
		TenantQueueDepth: o.tenantQueueDepth,
		TenantWeights:    weights,
		TenantRates:      rates,
		SearchWorkers:    o.searchWorkers,
		MaxSessions:      o.maxSessions,
		SessionBacklog:   o.sessionBacklog,
		DefaultDeadline:  o.deadline,
		MaxDeadline:      o.maxDeadline,
		MaxUploadBytes:   o.maxUploadBytes,
		Store:            st,
		CheckpointEvery:  o.checkpointEvery,
		Telemetry:        reg,
	})
	if st != nil {
		sum := srv.Recover(recovery)
		fmt.Fprintf(stdout, "eventmatchd: recovered %d jobs from %s (%d results on disk, %d requeued, %d unrecoverable; %d torn records dropped)\n",
			sum.Jobs, o.dataDir, sum.Results, sum.Requeued, sum.Failed, recovery.Torn)
		fmt.Fprintf(stdout, "eventmatchd: recovered %d sessions (%d resumed live)\n",
			sum.Sessions, sum.SessionsResumed)
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return exitError, err
	}
	fmt.Fprintf(stdout, "eventmatchd listening on http://%s\n", ln.Addr())
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		// The listener died out from under us; nothing to drain into.
		srv.Shutdown(context.Background()) //nolint:errcheck // always nil
		return exitError, err
	case <-ctx.Done():
	}

	// Graceful drain: stop admitting first (job submission checks the
	// draining flag before the HTTP server closes), give in-flight jobs
	// their grace, then force-cancel into anytime results.
	fmt.Fprintln(stdout, "eventmatchd: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), o.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return exitError, err
	}
	if err := hs.Shutdown(drainCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return exitError, err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return exitError, err
	}

	if o.metricsJSON != "" {
		if err := writeMetricsJSON(reg, o.metricsJSON); err != nil {
			return exitError, err
		}
	}
	fmt.Fprintln(stdout, "eventmatchd: drained")
	return exitOK, nil
}

func writeMetricsJSON(reg *telemetry.Registry, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
