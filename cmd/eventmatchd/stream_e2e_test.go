package main

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"os"
	"strings"
	"testing"
	"time"

	"eventmatch/internal/server"
	"eventmatch/internal/server/client"
)

// fig1StreamInputs renders Fig. 1 as a streaming workload: the open-session
// fixed side plus the target log as trace lines to append.
func fig1StreamInputs(t *testing.T) (open server.OpenSessionRequest, lines []string) {
	t.Helper()
	log1, log2, patterns, _ := fig1Inputs(t)
	for _, ln := range strings.Split(string(log2), "\n") {
		if strings.TrimSpace(ln) != "" {
			lines = append(lines, ln)
		}
	}
	var pats []string
	for _, p := range strings.Split(string(patterns), "\n") {
		if strings.TrimSpace(p) != "" {
			pats = append(pats, p)
		}
	}
	return server.OpenSessionRequest{
		Log1:      server.LogPayload{Data: string(log1)},
		Patterns:  pats,
		Algorithm: "exact",
	}, lines
}

// batchPrefix runs one batch job over the first n target traces and returns
// its result — the reference the streamed mapping must match bit for bit.
func batchPrefix(t *testing.T, ctx context.Context, c *client.Client, open server.OpenSessionRequest, lines []string, n int) server.JobResult {
	t.Helper()
	st, err := c.Submit(ctx, server.SubmitRequest{
		Log1:      open.Log1,
		Log2:      server.LogPayload{Format: "log", Data: strings.Join(lines[:n], "\n") + "\n"},
		Patterns:  open.Patterns,
		Algorithm: open.Algorithm,
		TimeoutMS: 60_000,
	})
	if err != nil {
		t.Fatalf("batch submit over %d traces: %v", n, err)
	}
	final, err := c.Wait(ctx, st.ID, 5*time.Millisecond)
	if err != nil || final.State != server.StateDone {
		t.Fatalf("batch wait over %d traces: %v (state %s, %s)", n, err, final.State, final.Error)
	}
	res, err := c.Result(ctx, st.ID)
	if err != nil {
		t.Fatalf("batch result over %d traces: %v", n, err)
	}
	return res
}

// requirePairsEqual fails unless the streamed update and the batch result
// carry the identical name-level mapping and score (1 ulp score tolerance).
func requirePairsEqual(t *testing.T, what string, up *server.SessionUpdate, ref server.JobResult) {
	t.Helper()
	if up == nil {
		t.Fatalf("%s: no session update", what)
	}
	if len(up.Pairs) != len(ref.Pairs) {
		t.Fatalf("%s: streamed %d pairs, batch %d\nstreamed: %v\nbatch: %v",
			what, len(up.Pairs), len(ref.Pairs), up.Pairs, ref.Pairs)
	}
	for k, v := range ref.Pairs {
		if up.Pairs[k] != v {
			t.Fatalf("%s: pair %s streamed %q, batch %q", what, k, up.Pairs[k], v)
		}
	}
	if math.Abs(up.Score-ref.Score) > 1e-9 {
		t.Fatalf("%s: streamed score %v, batch %v", what, up.Score, ref.Score)
	}
}

// TestE2EStream is the CI streaming gate (set EVENTMATCHD_E2E=1): the real
// daemon serves a long-lived session over the Fig. 1 workload. Target traces
// arrive in randomized chunk sizes; after every chunk the streamed mapping
// must be bit-identical to a batch job over the same prefix. Mid-stream the
// daemon is kill -9'd and restarted on the same data dir: the journaled
// deltas replay, the session comes back open and converged, accepts the rest
// of the stream, and its clean close carries the same final mapping as the
// full batch run — which must also survive one more restart as a journaled
// terminal record.
func TestE2EStream(t *testing.T) {
	if os.Getenv("EVENTMATCHD_E2E") != "1" {
		t.Skip("set EVENTMATCHD_E2E=1 to run the streaming gate")
	}
	seed := time.Now().UnixNano()
	rng := rand.New(rand.NewSource(seed))
	t.Logf("chunk seed %d", seed)

	dataDir := t.TempDir()
	open, lines := fig1StreamInputs(t)
	durableArgs := []string{
		"-addr", "127.0.0.1:0",
		"-workers", "1",
		"-data-dir", dataDir,
		"-session-backlog", "64",
	}
	cmd, addr, stderr := startDaemon(t, durableArgs...)
	killed := false
	defer func() {
		if !killed && cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	c := client.New("http://"+addr, nil).WithRetry(client.DefaultRetryPolicy())

	// 1. Open the session and stream a random first half, checking every
	// prefix against its batch reference.
	st, err := c.OpenSession(ctx, open)
	if err != nil {
		t.Fatalf("open session: %v; stderr:\n%s", err, stderr.String())
	}
	if st.State != server.SessionOpen {
		t.Fatalf("session opened in state %s", st.State)
	}
	half := len(lines) / 2
	if half == 0 {
		half = 1
	}
	sent := 0
	for sent < half {
		n := 1 + rng.Intn(3)
		if sent+n > half {
			n = half - sent
		}
		ack, err := c.AppendSession(ctx, st.ID, lines[sent:sent+n])
		if err != nil {
			t.Fatalf("append [%d:%d): %v", sent, sent+n, err)
		}
		sent += n
		if ack.Accepted != sent {
			t.Fatalf("accepted %d after %d traces", ack.Accepted, sent)
		}
		cur, err := c.WaitSessionCaughtUp(ctx, st.ID, 0)
		if err != nil {
			t.Fatalf("catch-up at %d traces: %v", sent, err)
		}
		requirePairsEqual(t, fmt.Sprintf("prefix %d", sent),
			cur.Update, batchPrefix(t, ctx, c, open, lines, sent))
	}

	// 2. Crash hard mid-stream: no drain, no terminal record. The journaled
	// session deltas are all the next boot gets.
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	cmd.Wait()
	killed = true

	cmd2, addr2, stderr2 := startDaemon(t, durableArgs...)
	defer func() {
		if cmd2.ProcessState == nil {
			cmd2.Process.Kill()
			cmd2.Wait()
		}
	}()
	c2 := client.New("http://"+addr2, nil).WithRetry(client.DefaultRetryPolicy())

	// 3. The session came back open with every admitted trace replayed, and
	// converges to the same mapping the pre-crash session had published.
	cur, err := c2.WaitSessionCaughtUp(ctx, st.ID, 0)
	if err != nil {
		t.Fatalf("recovered catch-up: %v; stderr:\n%s", err, stderr2.String())
	}
	if cur.State != server.SessionOpen {
		t.Fatalf("recovered session state %s (%s)", cur.State, cur.Error)
	}
	if cur.Accepted != sent {
		t.Fatalf("recovered session admitted %d traces, want %d", cur.Accepted, sent)
	}
	requirePairsEqual(t, "post-crash prefix",
		cur.Update, batchPrefix(t, ctx, c2, open, lines, sent))

	// 4. Stream the rest into the recovered session, watching the push
	// endpoint concurrently; then close and require the final mapping to
	// equal the full batch run.
	watchErr := make(chan error, 1)
	var watched []server.SessionUpdate
	go func() {
		watchErr <- c2.WatchSession(ctx, st.ID, func(up server.SessionUpdate) bool {
			watched = append(watched, up)
			return true
		})
	}()
	for sent < len(lines) {
		n := 1 + rng.Intn(3)
		if sent+n > len(lines) {
			n = len(lines) - sent
		}
		if _, err := c2.AppendSession(ctx, st.ID, lines[sent:sent+n]); err != nil {
			t.Fatalf("append [%d:%d) after recovery: %v", sent, sent+n, err)
		}
		sent += n
	}
	if _, err := c2.CloseSession(ctx, st.ID); err != nil {
		t.Fatalf("close: %v", err)
	}
	fin, err := c2.WaitSessionTerminal(ctx, st.ID, 0)
	if err != nil {
		t.Fatalf("wait terminal: %v", err)
	}
	if fin.State != server.SessionClosed {
		t.Fatalf("session ended %s (%s), want closed", fin.State, fin.Error)
	}
	if fin.Update == nil || !fin.Update.Final || fin.Update.Revision != len(lines) {
		t.Fatalf("final update %+v, want final revision %d", fin.Update, len(lines))
	}
	fullRef := batchPrefix(t, ctx, c2, open, lines, len(lines))
	requirePairsEqual(t, "final", fin.Update, fullRef)

	// The watch stream ended with the session and saw monotone revisions up
	// to the final marker.
	select {
	case err := <-watchErr:
		if err != nil {
			t.Fatalf("watch: %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("watch stream never ended")
	}
	if len(watched) == 0 {
		t.Fatal("watch saw no updates")
	}
	for i := 1; i < len(watched); i++ {
		if watched[i].Revision < watched[i-1].Revision {
			t.Fatalf("watched revisions went backwards: %d then %d",
				watched[i-1].Revision, watched[i].Revision)
		}
	}
	if last := watched[len(watched)-1]; !last.Final || last.Revision != len(lines) {
		t.Fatalf("last watched update %+v, want final revision %d", last, len(lines))
	}

	// 5. One more restart: the closed session must come back terminal with
	// the journaled final mapping, served without a live core.
	cmd2.Process.Kill()
	cmd2.Wait()
	cmd3, addr3, stderr3 := startDaemon(t, durableArgs...)
	defer func() {
		if cmd3.ProcessState == nil {
			cmd3.Process.Kill()
			cmd3.Wait()
		}
	}()
	c3 := client.New("http://"+addr3, nil).WithRetry(client.DefaultRetryPolicy())
	again, err := c3.Session(ctx, st.ID)
	if err != nil {
		t.Fatalf("restored terminal status: %v; stderr:\n%s", err, stderr3.String())
	}
	if again.State != server.SessionClosed {
		t.Fatalf("restored session state %s, want closed", again.State)
	}
	requirePairsEqual(t, "restored final", again.Update, fullRef)
}
