package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWorkloads(t *testing.T) {
	for _, workload := range []string{"real-like", "synthetic", "random", "fig1"} {
		dir := t.TempDir()
		if err := run(workload, 3, 50, 50, 2, 4, "log", dir); err != nil {
			t.Fatalf("%s: %v", workload, err)
		}
		for _, f := range []string{"l1.log", "l2.log", "patterns.txt"} {
			if _, err := os.Stat(filepath.Join(dir, f)); err != nil {
				t.Errorf("%s: missing %s: %v", workload, f, err)
			}
		}
		truthPath := filepath.Join(dir, "truth.txt")
		_, err := os.Stat(truthPath)
		if workload == "random" {
			if err == nil {
				t.Errorf("%s: unexpected truth file", workload)
			}
		} else if err != nil {
			t.Errorf("%s: missing truth file: %v", workload, err)
		}
	}
}

func TestRunFormats(t *testing.T) {
	for _, format := range []string{"log", "csv", "xes"} {
		dir := t.TempDir()
		if err := run("fig1", 1, 10, 10, 1, 4, format, dir); err != nil {
			t.Fatalf("%s: %v", format, err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, e := range entries {
			if strings.HasPrefix(e.Name(), "l1.") {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: no l1 file written", format)
		}
	}
}

func TestRunErrors(t *testing.T) {
	dir := t.TempDir()
	if err := run("nope", 1, 10, 10, 1, 4, "log", dir); err == nil {
		t.Error("unknown workload must fail")
	}
	if err := run("fig1", 1, 10, 10, 1, 4, "nope", dir); err == nil {
		t.Error("unknown format must fail")
	}
}

func TestRunTruthMatchesLogs(t *testing.T) {
	dir := t.TempDir()
	if err := run("real-like", 3, 40, 40, 2, 4, "log", dir); err != nil {
		t.Fatal(err)
	}
	truth, err := os.ReadFile(filepath.Join(dir, "truth.txt"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(strings.TrimSpace(string(truth)), "\n") + 1
	if lines != 11 {
		t.Errorf("truth has %d lines, want 11", lines)
	}
}
