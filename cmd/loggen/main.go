// Command loggen generates the paper's evaluation workloads as log files on
// disk, together with the declared patterns and the ground-truth mapping.
//
// Usage:
//
//	loggen -workload real-like|synthetic|random|fig1 [flags] OUTDIR
//
// It writes OUTDIR/l1.log, OUTDIR/l2.log, OUTDIR/patterns.txt and (when a
// ground truth exists) OUTDIR/truth.txt.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"eventmatch/internal/event"
	"eventmatch/internal/gen"
	"eventmatch/internal/logio"
)

func main() {
	workload := flag.String("workload", "real-like", "real-like | synthetic | random | fig1")
	seed := flag.Int64("seed", 7, "generator seed")
	traces := flag.Int("traces", 3000, "number of traces (real-like/random)")
	synthTraces := flag.Int("synth-traces", 10000, "number of traces (synthetic)")
	blocks := flag.Int("blocks", 10, "synthetic block count (10 events per block)")
	events := flag.Int("events", 4, "random workload alphabet size")
	format := flag.String("format", "log", "output format: log | csv | xes")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: loggen [flags] OUTDIR\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*workload, *seed, *traces, *synthTraces, *blocks, *events, *format, flag.Arg(0)); err != nil {
		fmt.Fprintln(os.Stderr, "loggen:", err)
		os.Exit(1)
	}
}

func run(workload string, seed int64, traces, synthTraces, blocks, events int, format, outdir string) error {
	var g *gen.Generated
	switch workload {
	case "real-like":
		g = gen.RealLike(seed, traces)
	case "synthetic":
		g = gen.LargeSynthetic(seed, blocks, synthTraces)
	case "random":
		g = gen.RandomPair(seed, events, traces, 2*events)
	case "fig1":
		g = gen.Fig1()
	default:
		return fmt.Errorf("unknown workload %q", workload)
	}
	if err := os.MkdirAll(outdir, 0o755); err != nil {
		return err
	}
	ext := map[string]string{logio.FormatTraceLines: "log", logio.FormatCSV: "csv", logio.FormatXES: "xes"}[format]
	if ext == "" {
		return fmt.Errorf("unknown format %q", format)
	}
	if err := writeLog(filepath.Join(outdir, "l1."+ext), g.L1, format); err != nil {
		return err
	}
	if err := writeLog(filepath.Join(outdir, "l2."+ext), g.L2, format); err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(outdir, "patterns.txt"),
		[]byte(strings.Join(g.Patterns, "\n")+"\n"), 0o644); err != nil {
		return err
	}
	if g.Truth != nil {
		var b strings.Builder
		for v1, v2 := range g.Truth {
			if v2 == event.None {
				continue
			}
			fmt.Fprintf(&b, "%s -> %s\n", g.L1.Alphabet.Name(event.ID(v1)), g.L2.Alphabet.Name(v2))
		}
		if err := os.WriteFile(filepath.Join(outdir, "truth.txt"), []byte(b.String()), 0o644); err != nil {
			return err
		}
	}
	fmt.Printf("wrote %s workload to %s (%d+%d traces, %d+%d events, %d patterns)\n",
		workload, outdir, g.L1.NumTraces(), g.L2.NumTraces(), g.L1.NumEvents(), g.L2.NumEvents(), len(g.Patterns))
	return nil
}

func writeLog(path string, l *event.Log, format string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := logio.Write(f, l, format); err != nil {
		return err
	}
	return f.Close()
}
