// Package eventmatch matches heterogeneous event logs with patterns.
//
// It implements the pattern-based event matching framework of Zhu, Song,
// Wang, Yu and Sun, "Matching Heterogeneous Events with Patterns" (ICDE
// 2014 / TKDE 2017): given two event logs with opaque event names, find the
// injective mapping between their event alphabets that maximizes the
// frequency similarity of declared event patterns (SEQ/AND composite
// events), with dependency-graph vertices and edges as special patterns.
//
// The happy path is three calls:
//
//	l1, _ := eventmatch.ReadLogFile("dept1.log")
//	l2, _ := eventmatch.ReadLogFile("dept2.csv")
//	res, _ := eventmatch.Match(l1, l2, eventmatch.Config{
//		Patterns: []string{"SEQ(Receive,Approve,AND(Payment,Check))"},
//	})
//	fmt.Println(res.Pairs) // map[Receive:SD Approve:SP ...]
//
// Algorithms: the exact A* search with simple or tight score bounds
// (optimal, exponential worst case), a greedy one-expansion heuristic, and
// the advanced heuristic (pattern anchoring + Kuhn–Munkres-style
// augmentation + pattern-guided repair), plus the structure-based baselines
// from the paper's evaluation. See DESIGN.md for the full map from paper
// sections to packages.
package eventmatch

import (
	"context"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"eventmatch/internal/baseline"
	"eventmatch/internal/event"
	"eventmatch/internal/logio"
	"eventmatch/internal/match"
	"eventmatch/internal/metrics"
	"eventmatch/internal/pattern"
	"eventmatch/internal/telemetry"
)

// Core types re-exported from the implementation packages. The aliases carry
// every method of the underlying types.
type (
	// Log is a collection of traces over an interned event alphabet.
	Log = event.Log
	// Trace is one sequence of event ids.
	Trace = event.Trace
	// EventID is a dense event identifier local to a log's alphabet.
	EventID = event.ID
	// Alphabet interns event names to ids.
	Alphabet = event.Alphabet
	// Pattern is an executable SEQ/AND event pattern bound to an alphabet.
	Pattern = pattern.Pattern
	// PatternExpr is a parsed, not-yet-bound pattern expression.
	PatternExpr = pattern.Expr
	// Mapping is an injective event mapping, indexed by L1 event id.
	Mapping = match.Mapping
	// Stats reports search effort. Stats.Truncated marks an anytime
	// (best-so-far) result; Stats.StopReason says why the run stopped.
	Stats = match.Stats
	// Quality holds precision / recall / F-measure against a ground truth.
	Quality = metrics.Quality
	// ReadOptions control fault tolerance and resource guards when reading
	// logs (lenient mode, max trace length, max input bytes).
	ReadOptions = logio.ReadOptions
	// ReadReport summarizes what a lenient read skipped.
	ReadReport = logio.ReadReport
	// TelemetryRegistry collects named counters, gauges and timers from the
	// matching pipeline. Create one with NewTelemetry, pass it through
	// Config.Telemetry (and/or ReadOptions.Telemetry), then read it back
	// with its Snapshot, WriteJSON or Summary methods.
	TelemetryRegistry = telemetry.Registry
	// TelemetrySnapshot is a point-in-time copy of a registry's metrics;
	// Stats.Telemetry carries one per search when telemetry is enabled.
	TelemetrySnapshot = telemetry.Snapshot
)

// NewTelemetry returns an empty metrics registry ready to hand to
// Config.Telemetry or ReadOptions.Telemetry. A nil registry everywhere means
// telemetry is off and costs nothing.
func NewTelemetry() *TelemetryRegistry { return telemetry.NewRegistry() }

// Algorithm selects the matching strategy.
type Algorithm int

// Matching algorithms. The Exact variants return the optimal mapping;
// AlgoHeuristicAdvanced is the zero value and the recommended default for
// non-trivial alphabets.
const (
	// AlgoHeuristicAdvanced is the full Section 5 heuristic.
	AlgoHeuristicAdvanced Algorithm = iota
	// AlgoHeuristicSimple is the greedy one-expansion heuristic.
	AlgoHeuristicSimple
	// AlgoExact is A* over pattern normal distance with the sharp bound
	// (this implementation's strongest admissible pruning).
	AlgoExact
	// AlgoExactSimpleBound is A* with the §3.3 simple bound (for study).
	AlgoExactSimpleBound
	// AlgoVertex is the Kang–Naughton vertex-frequency baseline.
	AlgoVertex
	// AlgoVertexEdge is the Kang–Naughton vertex+edge baseline (exact A*).
	AlgoVertexEdge
	// AlgoIterative is the Nejati-style similarity-propagation baseline.
	AlgoIterative
	// AlgoEntropy is the entropy-only baseline.
	AlgoEntropy
)

func (a Algorithm) String() string {
	switch a {
	case AlgoExact:
		return "exact"
	case AlgoExactSimpleBound:
		return "exact-simple"
	case AlgoHeuristicSimple:
		return "heuristic-simple"
	case AlgoHeuristicAdvanced:
		return "heuristic-advanced"
	case AlgoVertex:
		return "vertex"
	case AlgoVertexEdge:
		return "vertex-edge"
	case AlgoIterative:
		return "iterative"
	case AlgoEntropy:
		return "entropy"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// ParseAlgorithm resolves the names printed by Algorithm.String.
func ParseAlgorithm(s string) (Algorithm, error) {
	for a := AlgoHeuristicAdvanced; a <= AlgoEntropy; a++ {
		if a.String() == s {
			return a, nil
		}
	}
	return 0, fmt.Errorf("eventmatch: unknown algorithm %q", s)
}

// Config parameterizes Match.
type Config struct {
	// Algorithm defaults to AlgoHeuristicAdvanced.
	Algorithm Algorithm

	// Patterns are textual complex patterns over L1's event names, e.g.
	// "SEQ(A,AND(B,C),D)". They are ignored by the baseline algorithms.
	Patterns []string

	// MaxDuration caps the search wall-clock time; zero means no limit.
	// When the cap is hit the search returns its best complete mapping so
	// far with Stats.Truncated set — not an error.
	MaxDuration time.Duration

	// MaxGenerated caps how many candidate mappings the search may
	// generate; zero means no limit. Like MaxDuration, hitting the cap
	// truncates rather than fails.
	MaxGenerated int

	// MaxFrontier bounds the A* frontier (beam pruning): when the open
	// list exceeds the cap the worst nodes are discarded. Zero means no
	// bound. A pruned search still terminates with a complete mapping but
	// cannot prove optimality, so its result is marked truncated. Only the
	// exact algorithms use it.
	MaxFrontier int

	// Workers parallelizes the search across this many goroutines:
	// candidate expansions (A*), candidate scorings (the advanced
	// heuristic) and the underlying pattern-frequency trace scans are
	// sharded over a worker pool. 0 or 1 runs fully sequentially; a
	// negative value selects one worker per available CPU. The mapping and
	// score are identical for every value — parallel candidates are laid
	// out and selected in the sequential order — so Workers trades nothing
	// but goroutines for wall-clock time. Only the pattern-based
	// algorithms (exact, heuristics) use it.
	Workers int

	// Telemetry, when non-nil, receives fine-grained effort counters from
	// the search (A* expansions, bound evaluations, frequency-cache hits
	// and misses, worker-shard sizes, ...). The registry accumulates across
	// calls; Result.Stats.Telemetry carries a snapshot taken at the end of
	// each search. Nil (the default) disables instrumentation; the hot
	// paths then pay only an untaken nil-check. Only the pattern-based
	// algorithms (exact, heuristics) report search counters.
	Telemetry *TelemetryRegistry
}

// resolveWorkers maps the public Workers convention (negative = one per
// CPU) to the internal one (a concrete count; 0/1 = sequential).
func resolveWorkers(w int) int {
	if w < 0 {
		return runtime.GOMAXPROCS(0)
	}
	return w
}

// Result is a completed matching.
type Result struct {
	// Mapping is the id-level mapping (L1 id → L2 id).
	Mapping Mapping
	// Pairs is the name-level mapping for presentation.
	Pairs map[string]string
	// Score is the algorithm's objective value for the mapping.
	Score float64
	// Stats reports the search effort (zero for closed-form baselines).
	Stats Stats
}

// Match finds an event mapping from l1's alphabet into l2's. See
// MatchContext for the anytime/cancellation semantics.
func Match(l1, l2 *Log, cfg Config) (*Result, error) {
	return MatchContext(context.Background(), l1, l2, cfg)
}

// MatchContext is Match under a caller context. The search is anytime:
// on context cancellation or an exceeded budget (MaxDuration, MaxGenerated,
// MaxFrontier) it returns the best complete mapping found so far with
// Stats.Truncated set and Stats.StopReason naming the cause, rather than an
// error.
func MatchContext(ctx context.Context, l1, l2 *Log, cfg Config) (*Result, error) {
	if l1 == nil || l2 == nil {
		return nil, fmt.Errorf("eventmatch: nil log")
	}
	switch cfg.Algorithm {
	case AlgoVertex, AlgoIterative, AlgoEntropy:
		// The baselines take their duration budget through the context.
		bctx := ctx
		if cfg.MaxDuration > 0 {
			var cancel context.CancelFunc
			bctx, cancel = context.WithTimeout(ctx, cfg.MaxDuration)
			defer cancel()
		}
		var (
			res baseline.Result
			err error
		)
		switch cfg.Algorithm {
		case AlgoVertex:
			res, err = baseline.VertexContext(bctx, l1, l2)
		case AlgoIterative:
			res, err = baseline.IterativeContext(bctx, l1, l2, baseline.IterativeOptions{})
		case AlgoEntropy:
			res, err = baseline.EntropyContext(bctx, l1, l2)
		}
		return baselineResult(l1, l2, res, err)
	}

	mode := match.ModePattern
	if cfg.Algorithm == AlgoVertexEdge {
		mode = match.ModeVertexEdge
	}
	var bound []*Pattern
	if mode == match.ModePattern {
		var err error
		bound, err = BindPatterns(cfg.Patterns, l1.Alphabet)
		if err != nil {
			return nil, err
		}
	}
	pr, err := match.BuildProblem(l1, l2, bound, mode)
	if err != nil {
		return nil, err
	}
	opts := match.Options{
		Bound:        match.BoundSharp,
		MaxDuration:  cfg.MaxDuration,
		MaxGenerated: cfg.MaxGenerated,
		MaxFrontier:  cfg.MaxFrontier,
		Workers:      resolveWorkers(cfg.Workers),
		Telemetry:    cfg.Telemetry,
	}
	var (
		m  Mapping
		st Stats
	)
	switch cfg.Algorithm {
	case AlgoExact, AlgoVertexEdge:
		m, st, err = pr.AStarContext(ctx, opts)
	case AlgoExactSimpleBound:
		opts.Bound = match.BoundSimple
		m, st, err = pr.AStarContext(ctx, opts)
	case AlgoHeuristicSimple:
		opts.Bound = match.BoundSimple
		m, st, err = pr.GreedyExpandContext(ctx, opts)
	case AlgoHeuristicAdvanced:
		opts.Bound = match.BoundSimple
		m, st, err = pr.HeuristicAdvancedContext(ctx, opts)
	default:
		return nil, fmt.Errorf("eventmatch: unknown algorithm %v", cfg.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	return &Result{
		Mapping: m,
		Pairs:   namePairs(l1, l2, m),
		Score:   st.Score,
		Stats:   st,
	}, nil
}

func baselineResult(l1, l2 *Log, res baseline.Result, err error) (*Result, error) {
	if err != nil {
		return nil, err
	}
	return &Result{
		Mapping: res.Mapping,
		Pairs:   namePairs(l1, l2, res.Mapping),
		Score:   res.Score,
		Stats: Stats{
			Elapsed:    res.Elapsed,
			Score:      res.Score,
			Truncated:  res.Truncated,
			StopReason: res.StopReason,
		},
	}, nil
}

func namePairs(l1, l2 *Log, m Mapping) map[string]string {
	out := make(map[string]string)
	for v1, v2 := range m {
		if v2 == event.None {
			continue
		}
		out[l1.Alphabet.Name(event.ID(v1))] = l2.Alphabet.Name(v2)
	}
	return out
}

// ParsePattern parses a textual pattern such as "SEQ(A,AND(B,C),D)".
func ParsePattern(s string) (*PatternExpr, error) { return pattern.Parse(s) }

// BindPatterns parses and binds textual patterns against an alphabet.
func BindPatterns(srcs []string, a *Alphabet) ([]*Pattern, error) {
	out := make([]*Pattern, 0, len(srcs))
	for i, s := range srcs {
		p, err := pattern.ParseBind(s, a)
		if err != nil {
			return nil, fmt.Errorf("eventmatch: pattern %d: %w", i, err)
		}
		out = append(out, p)
	}
	return out, nil
}

// PatternFrequency evaluates f(p) for a textual pattern over a log.
func PatternFrequency(src string, l *Log) (float64, error) {
	p, err := pattern.ParseBind(src, l.Alphabet)
	if err != nil {
		return 0, err
	}
	return p.Frequency(l), nil
}

// Evaluate computes precision / recall / F-measure of a found mapping
// against a ground truth.
func Evaluate(found, truth Mapping) Quality { return metrics.Evaluate(found, truth) }

// LogFromStrings builds a log from whitespace-separated trace strings; handy
// for tests and examples.
func LogFromStrings(traces ...string) *Log { return event.FromStrings(traces...) }

// ReadLog parses a log from r in the named format ("log", "csv" or "xes").
func ReadLog(r io.Reader, format string) (*Log, error) { return logio.Read(r, format) }

// ReadLogWithReport parses a log from r in the named format under the given
// fault-tolerance and resource options; the report records what a lenient
// read skipped.
func ReadLogWithReport(r io.Reader, format string, opts ReadOptions) (*Log, ReadReport, error) {
	return logio.ReadWithReport(r, format, opts)
}

// WriteLog serializes a log in the named format.
func WriteLog(w io.Writer, l *Log, format string) error { return logio.Write(w, l, format) }

// ReadLogFile reads a log file, detecting the format from the extension
// (.csv, .xes/.xml, anything else = trace lines).
func ReadLogFile(path string) (*Log, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("eventmatch: %w", err)
	}
	defer f.Close()
	return logio.Read(f, logio.DetectFormat(path))
}

// ReadLogFileReport is ReadLogFile under the given fault-tolerance and
// resource options.
func ReadLogFileReport(path string, opts ReadOptions) (*Log, ReadReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, ReadReport{}, fmt.Errorf("eventmatch: %w", err)
	}
	defer f.Close()
	return logio.ReadWithReport(f, logio.DetectFormat(path), opts)
}

// TranslateLog rewrites l2 into l1's vocabulary using a discovered mapping —
// the integration payoff of matching (the paper's intro: querying merged
// heterogeneous logs is only meaningful once events correspond). Every l2
// event that is some l1 event's image is renamed to that l1 event; l2 events
// outside the mapping's range keep their own names. The result shares no
// state with either input.
func TranslateLog(l2 *Log, m Mapping, l1 *Log) (*Log, error) {
	if l1 == nil || l2 == nil {
		return nil, fmt.Errorf("eventmatch: nil log")
	}
	// Invert the mapping: image id in l2 → source name in l1.
	inverse := make(map[EventID]string)
	for v1, v2 := range m {
		if v2 == event.None {
			continue
		}
		if int(v2) >= l2.NumEvents() {
			return nil, fmt.Errorf("eventmatch: mapping image %d outside L2's alphabet", v2)
		}
		if v1 >= l1.NumEvents() {
			return nil, fmt.Errorf("eventmatch: mapping source %d outside L1's alphabet", v1)
		}
		if _, dup := inverse[v2]; dup {
			return nil, fmt.Errorf("eventmatch: mapping not injective at target %d", v2)
		}
		inverse[v2] = l1.Alphabet.Name(EventID(v1))
	}
	out := LogFromStrings()
	for _, t := range l2.Traces {
		names := make([]string, len(t))
		for i, e := range t {
			if name, ok := inverse[e]; ok {
				names[i] = name
			} else {
				names[i] = l2.Alphabet.Name(e)
			}
		}
		out.AppendNames(names...)
	}
	return out, nil
}

// SetResult is a completed 1-to-n matching.
type SetResult struct {
	// Sets maps each L1 event name to the names of its L2 images.
	Sets map[string][]string
	// Score is the pattern normal distance under the merged-event
	// interpretation.
	Score float64
	// Stats reports the extension effort.
	Stats Stats
}

// MatchOneToN runs Match and then extends the injective result to a 1-to-n
// mapping: L2 events left unmapped are greedily merged into the L1 event
// whose combined interpretation raises the pattern normal distance — the
// paper's §8 future-work setting (one coarse L1 activity split into several
// fine-grained L2 activities). Only the pattern-based algorithms support
// the extension.
func MatchOneToN(l1, l2 *Log, cfg Config) (*SetResult, error) {
	return MatchOneToNContext(context.Background(), l1, l2, cfg)
}

// MatchOneToNContext is MatchOneToN under a caller context; both the base
// match and the extension stop early and return their best-so-far result
// (Stats.Truncated) on cancellation or budget exhaustion.
func MatchOneToNContext(ctx context.Context, l1, l2 *Log, cfg Config) (*SetResult, error) {
	if l1 == nil || l2 == nil {
		return nil, fmt.Errorf("eventmatch: nil log")
	}
	switch cfg.Algorithm {
	case AlgoVertex, AlgoIterative, AlgoEntropy:
		return nil, fmt.Errorf("eventmatch: %v does not support 1-to-n extension", cfg.Algorithm)
	}
	base, err := MatchContext(ctx, l1, l2, cfg)
	if err != nil {
		return nil, err
	}
	mode := match.ModePattern
	if cfg.Algorithm == AlgoVertexEdge {
		mode = match.ModeVertexEdge
	}
	var bound []*Pattern
	if mode == match.ModePattern {
		bound, err = BindPatterns(cfg.Patterns, l1.Alphabet)
		if err != nil {
			return nil, err
		}
	}
	pr, err := match.BuildProblem(l1, l2, bound, mode)
	if err != nil {
		return nil, err
	}
	sm, st, err := pr.ExtendOneToNContext(ctx, base.Mapping, match.Options{
		MaxDuration:  cfg.MaxDuration,
		MaxGenerated: cfg.MaxGenerated,
		Workers:      resolveWorkers(cfg.Workers),
		Telemetry:    cfg.Telemetry,
	})
	if err != nil {
		return nil, err
	}
	if base.Stats.Truncated && !st.Truncated {
		st.Truncated = true
		st.StopReason = base.Stats.StopReason
	}
	sets := make(map[string][]string)
	for v1, set := range sm {
		if len(set) == 0 {
			continue
		}
		names := make([]string, len(set))
		for i, v2 := range set {
			names[i] = l2.Alphabet.Name(v2)
		}
		sets[l1.Alphabet.Name(EventID(v1))] = names
	}
	return &SetResult{Sets: sets, Score: st.Score, Stats: st}, nil
}

// MergeLogs concatenates logs into one log over a shared alphabet (interning
// names in order of appearance). Use with TranslateLog to build the unified
// view of several matched sources.
func MergeLogs(logs ...*Log) (*Log, error) {
	out := LogFromStrings()
	for i, l := range logs {
		if l == nil {
			return nil, fmt.Errorf("eventmatch: log %d is nil", i)
		}
		for _, t := range l.Traces {
			names := make([]string, len(t))
			for j, e := range t {
				names[j] = l.Alphabet.Name(e)
			}
			out.AppendNames(names...)
		}
	}
	return out, nil
}
