module eventmatch

go 1.22
