package eventmatch_test

import (
	"fmt"
	"sort"

	"eventmatch"
)

// Two departments log the same order process under different encodings; one
// declared pattern is enough to recover the correspondence.
func ExampleMatch() {
	dept1 := eventmatch.LogFromStrings(
		"Receive Pay Check Ship",
		"Receive Check Pay Ship",
		"Receive Pay Check Ship",
	)
	dept2 := eventmatch.LogFromStrings(
		"SD FK KC FH",
		"SD KC FK FH",
		"SD FK KC FH",
	)
	res, err := eventmatch.Match(dept1, dept2, eventmatch.Config{
		Patterns: []string{"SEQ(Receive,AND(Pay,Check),Ship)"},
	})
	if err != nil {
		panic(err)
	}
	names := make([]string, 0, len(res.Pairs))
	for n := range res.Pairs {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%s -> %s\n", n, res.Pairs[n])
	}
	// Output:
	// Check -> KC
	// Pay -> FK
	// Receive -> SD
	// Ship -> FH
}

// Config.Workers parallelizes the search and its pattern-frequency scans
// across a worker pool. The result is identical for every worker count —
// candidates are laid out and selected in the sequential order and the
// trace-shard partial counts are integers merged by summation — so a
// parallel run can be compared field-for-field against a sequential one.
func ExampleMatch_workers() {
	dept1 := eventmatch.LogFromStrings(
		"Receive Pay Check Ship",
		"Receive Check Pay Ship",
		"Receive Pay Check Ship",
	)
	dept2 := eventmatch.LogFromStrings(
		"SD FK KC FH",
		"SD KC FK FH",
		"SD FK KC FH",
	)
	cfg := eventmatch.Config{
		Patterns: []string{"SEQ(Receive,AND(Pay,Check),Ship)"},
	}
	sequential, err := eventmatch.Match(dept1, dept2, cfg)
	if err != nil {
		panic(err)
	}
	cfg.Workers = 8 // or -1 for one worker per CPU
	parallel, err := eventmatch.Match(dept1, dept2, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Println("same score:", parallel.Score == sequential.Score)
	fmt.Println("same pairs:", len(parallel.Pairs) == len(sequential.Pairs))
	fmt.Println("Pay ->", parallel.Pairs["Pay"])
	// Output:
	// same score: true
	// same pairs: true
	// Pay -> FK
}

// Pattern frequency is the fraction of traces containing a contiguous
// instance of the pattern (Definition 4/5 of the paper).
func ExamplePatternFrequency() {
	l := eventmatch.LogFromStrings(
		"A B C D",
		"A C B D",
		"A B D C",
		"D C B A",
	)
	f, err := eventmatch.PatternFrequency("SEQ(A,AND(B,C),D)", l)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%.2f\n", f)
	// Output:
	// 0.50
}

// Evaluate scores a found mapping against a known ground truth using the
// paper's F-measure criterion.
func ExampleEvaluate() {
	truth := eventmatch.Mapping{0, 1, 2, 3}
	found := eventmatch.Mapping{0, 1, 3, 2} // two pairs swapped
	q := eventmatch.Evaluate(found, truth)
	fmt.Printf("precision=%.2f recall=%.2f F=%.2f\n", q.Precision, q.Recall, q.FMeasure)
	// Output:
	// precision=0.50 recall=0.50 F=0.50
}

// ParsePattern parses the textual SEQ/AND syntax; Bind resolves event names
// against a concrete log's alphabet.
func ExampleParsePattern() {
	expr, err := eventmatch.ParsePattern("seq( A , and(B, C) , D )")
	if err != nil {
		panic(err)
	}
	fmt.Println(expr)
	// Output:
	// SEQ(A,AND(B,C),D)
}
