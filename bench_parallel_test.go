// Sequential-vs-parallel benchmarks for the worker-pool frequency engine
// and the end-to-end matchers, plus the env-gated writer that records a
// BENCH_parallel.json trajectory point (see EXPERIMENTS.md for the
// methodology).
package eventmatch_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"eventmatch/internal/gen"
	"eventmatch/internal/match"
	"eventmatch/internal/pattern"
)

// benchWorkers is the worker-count axis of every parallel benchmark.
var benchWorkers = []int{1, 2, 4, 8}

// freqWorkload builds the Fig. 12-scale frequency workload: a 50-event
// synthetic log with several thousand traces and its complex patterns.
func freqWorkload(b testing.TB) (*pattern.TraceIndex, []*pattern.Pattern) {
	g := gen.LargeSynthetic(107, 5, 6000)
	ps := make([]*pattern.Pattern, 0, len(g.Patterns))
	for _, src := range g.Patterns {
		p, err := pattern.ParseBind(src, g.L1.Alphabet)
		if err != nil {
			b.Fatal(err)
		}
		ps = append(ps, p)
	}
	if len(ps) == 0 {
		b.Fatal("no patterns in workload")
	}
	return pattern.NewTraceIndex(g.L1), ps
}

// BenchmarkFrequencyEngine measures one full pattern-set frequency
// evaluation (uncached — the cold path every matcher pays) at each worker
// count.
func BenchmarkFrequencyEngine(b *testing.B) {
	ix, ps := freqWorkload(b)
	for _, w := range benchWorkers {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			eng := pattern.NewEngine(ix, w)
			for i := 0; i < b.N; i++ {
				for _, p := range ps {
					eng.Frequency(p)
				}
			}
		})
	}
}

// BenchmarkMatchParallel measures the end-to-end advanced heuristic on the
// 20-event synthetic workload at each worker count.
func BenchmarkMatchParallel(b *testing.B) {
	g := gen.LargeSynthetic(107, 2, 600)
	ps := make([]*pattern.Pattern, 0, len(g.Patterns))
	for _, src := range g.Patterns {
		p, err := pattern.ParseBind(src, g.L1.Alphabet)
		if err != nil {
			b.Fatal(err)
		}
		ps = append(ps, p)
	}
	for _, w := range benchWorkers {
		w := w
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			pr, err := match.BuildProblem(g.L1, g.L2, ps, match.ModePattern)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				if _, _, err := pr.HeuristicAdvanced(match.Options{Bound: match.BoundSimple, Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchPoint is one BENCH_parallel.json measurement.
type benchPoint struct {
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"ns_per_op"`
	Speedup float64 `json:"speedup_vs_1w"`
}

// TestWriteBenchParallel measures the frequency engine across worker counts
// and writes BENCH_parallel.json. Gated behind WRITE_BENCH_PARALLEL=1 so
// normal test runs stay fast; see EXPERIMENTS.md for the invocation.
func TestWriteBenchParallel(t *testing.T) {
	if os.Getenv("WRITE_BENCH_PARALLEL") != "1" {
		t.Skip("set WRITE_BENCH_PARALLEL=1 to (re)generate BENCH_parallel.json")
	}
	ix, ps := freqWorkload(t)
	points := make([]benchPoint, 0, len(benchWorkers))
	for _, w := range benchWorkers {
		eng := pattern.NewEngine(ix, w)
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for _, p := range ps {
					eng.Frequency(p)
				}
			}
		})
		points = append(points, benchPoint{Workers: w, NsPerOp: float64(r.NsPerOp())})
	}
	for i := range points {
		points[i].Speedup = points[0].NsPerOp / points[i].NsPerOp
	}
	out := struct {
		Benchmark  string       `json:"benchmark"`
		Workload   string       `json:"workload"`
		Go         string       `json:"go"`
		GOMAXPROCS int          `json:"gomaxprocs"`
		NumCPU     int          `json:"num_cpu"`
		Points     []benchPoint `json:"points"`
		Note       string       `json:"note"`
	}{
		Benchmark:  "FrequencyEngine (uncached full pattern-set evaluation)",
		Workload:   "gen.LargeSynthetic(107, 5, 6000): 50 events, 6000 traces, 8 complex patterns",
		Go:         runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Points:     points,
		Note: "speedup_vs_1w is bounded by num_cpu: on a single-core machine the parallel engine " +
			"can only demonstrate overhead-neutrality (~1x); rerun on a multi-core machine to " +
			"observe scaling. Frequencies are bit-identical at every worker count.",
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("BENCH_parallel.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote BENCH_parallel.json: %s", data)
}
